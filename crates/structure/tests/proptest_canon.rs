//! Differential tests for canonical labeling ([`cqdet_structure`]'s `canon`
//! module, reached through `Structure::iso_class_key` / `isomorphic`):
//!
//! * canonical keys must agree with the search-based isomorphism oracle
//!   (profile checks + `hom::reference::injective_hom_exists`, exactly the
//!   test the old `iso.rs` ran) on random structures, renamed copies with
//!   scrambled constant order, and the cycle-vs-near-cycle hard case;
//! * `dedup_up_to_iso` / `multiplicities` must decide everything by key —
//!   zero injective-homomorphism probes;
//! * the `hom_count_cached` memo must hit across fact-reordered isomorphic
//!   sources;
//! * the flat-index `connected_components` must agree with the retained
//!   `BTreeMap` reference decomposition.

use cqdet_structure::components::reference as comp_reference;
use cqdet_structure::hom::reference as hom_reference;
use cqdet_structure::{
    connected_components, dedup_up_to_iso, hom_cache_stats, hom_count, hom_count_cached,
    injective_probe_count, is_connected, isomorphic, multiplicities, Schema, Structure,
    StructureGenerator,
};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::with_relations([("E", 2), ("P", 1), ("T", 3)])
}

fn random_structure(seed: u64, domain: usize, facts: usize) -> Structure {
    StructureGenerator::new(schema(), seed).random_with_facts(domain.max(1), facts)
}

/// The search-based isomorphism test the old `iso.rs` used: equal profiles
/// plus an injective homomorphism (run on the reference engine, so the test
/// does not depend on the flat engine it is checking).
fn oracle_isomorphic(a: &Structure, b: &Structure) -> bool {
    a.schema() == b.schema()
        && a.domain_size() == b.domain_size()
        && a.profile() == b.profile()
        && hom_reference::injective_hom_exists(a, b)
}

/// An order-scrambling injective renaming (reverses the relative order of
/// all constants), so renamed copies exercise the non-order-preserving case
/// the old `flat().canon()` encoding got wrong.
fn scramble(s: &Structure) -> Structure {
    s.map_constants(|c| u64::MAX - 3 * c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// canon(a) == canon(b)  ⟺  search-based isomorphic(a, b), on random
    /// structure pairs drawn small enough that both outcomes occur.
    #[test]
    fn canon_equality_iff_isomorphic(seed in 0u64..100_000, dom in 1usize..4,
                                     facts_a in 0usize..5, facts_b in 0usize..5) {
        let mut a = random_structure(seed, dom, facts_a);
        let mut b = random_structure(seed ^ 0x00F5_E77A, dom, facts_b);
        if seed % 3 == 0 {
            a.add_isolated(500 + seed % 2);
        }
        if seed % 5 == 0 {
            b.add_isolated(700);
        }
        let by_key = a.iso_class_key() == b.iso_class_key();
        prop_assert_eq!(by_key, oracle_isomorphic(&a, &b), "{} vs {}", a, b);
        prop_assert_eq!(isomorphic(&a, &b), by_key);
    }

    /// A scrambled-order renamed copy is always isomorphic — same key.
    #[test]
    fn scrambled_copies_share_keys(seed in 0u64..100_000, dom in 1usize..6,
                                   facts in 0usize..8) {
        let a = random_structure(seed, dom, facts);
        let b = scramble(&a);
        prop_assert!(oracle_isomorphic(&a, &b), "renaming is an isomorphism");
        prop_assert_eq!(a.iso_class_key(), b.iso_class_key(), "{} vs {}", a, b);
        prop_assert!(isomorphic(&a, &b));
    }

    /// De-duplication and multiplicity vectors are decided entirely by
    /// canonical keys: no injective-homomorphism search runs, and the result
    /// matches the quadratic search-based reference computation.
    #[test]
    fn dedup_and_vectors_without_searches(seed in 0u64..100_000, n in 1usize..10,
                                          dom in 1usize..4, facts in 1usize..4) {
        let mut items: Vec<Structure> = (0..n)
            .map(|i| random_structure(seed ^ (i as u64) << 3, dom, facts))
            .collect();
        // Mix in scrambled copies so classes genuinely repeat.
        for i in 0..n / 2 {
            items.push(scramble(&items[i]));
        }
        let probes_before = injective_probe_count();
        let basis = dedup_up_to_iso(items.clone());
        let vector = multiplicities(&basis, &items);
        prop_assert_eq!(
            injective_probe_count(),
            probes_before,
            "canonical keys must decide dedup/multiplicities without searches"
        );
        // Reference: quadratic pairwise de-duplication with the oracle.
        let mut ref_basis: Vec<Structure> = Vec::new();
        for s in &items {
            if !ref_basis.iter().any(|t| oracle_isomorphic(t, s)) {
                ref_basis.push(s.clone());
            }
        }
        prop_assert_eq!(basis.len(), ref_basis.len());
        for (b, r) in basis.iter().zip(ref_basis.iter()) {
            prop_assert!(oracle_isomorphic(b, r), "basis order changed: {} vs {}", b, r);
        }
        let mut ref_counts = vec![0u64; ref_basis.len()];
        for s in &items {
            let idx = ref_basis.iter().position(|b| oracle_isomorphic(b, s)).unwrap();
            ref_counts[idx] += 1;
        }
        prop_assert_eq!(vector, Some(ref_counts));
    }

    /// The flat-index component decomposition agrees with the retained
    /// reference decomposition (as multisets of component structures), and
    /// `is_connected` agrees with counting components.
    #[test]
    fn components_match_reference(seed in 0u64..100_000, dom in 1usize..6,
                                  facts in 0usize..10) {
        let mut s = random_structure(seed, dom, facts);
        if seed % 4 == 0 {
            s.add_isolated(900);
            s.add_isolated(901);
        }
        let flat = connected_components(&s);
        let oracle = comp_reference::connected_components(&s);
        let sort_key = |c: &Structure| format!("{c:?}");
        let mut flat_keys: Vec<String> = flat.iter().map(sort_key).collect();
        let mut oracle_keys: Vec<String> = oracle.iter().map(sort_key).collect();
        flat_keys.sort();
        oracle_keys.sort();
        prop_assert_eq!(flat_keys, oracle_keys, "{}", s);
        prop_assert_eq!(is_connected(&s), flat.len() == 1);
    }
}

#[test]
fn cycle_vs_near_cycle_hard_case() {
    // Both have 3 edges over 3 vertices and identical profiles; only one is
    // a cycle.  Color refinement alone cannot split the cycle (it is
    // vertex-transitive), so this exercises individualization.
    let sch = Schema::with_relations([("E", 2), ("P", 1)]);
    let mut c3 = Structure::new(sch.clone());
    c3.add("E", &[0, 1]);
    c3.add("E", &[1, 2]);
    c3.add("E", &[2, 0]);
    let mut near = Structure::new(sch);
    near.add("E", &[0, 1]);
    near.add("E", &[1, 2]);
    near.add("E", &[0, 2]);
    assert_eq!(c3.profile(), near.profile());
    assert!(!isomorphic(&c3, &near));
    assert_ne!(c3.iso_class_key(), near.iso_class_key());
    assert!(!oracle_isomorphic(&c3, &near));
    // Rotated + scrambled cycle stays in the class.
    let rotated = scramble(&c3);
    assert_eq!(c3.iso_class_key(), rotated.iso_class_key());
}

#[test]
fn hom_cache_hits_across_fact_reordered_isomorphic_sources() {
    // The regression the canonical memo key fixes: two isomorphic sources
    // whose frozen constants sort differently used to occupy separate cache
    // entries (the order-preserving encoding differed), so the second count
    // always missed.
    let sch = Schema::binary(["E"]);
    let mut w = Structure::new(sch.clone());
    w.add("E", &[0, 1]);
    w.add("E", &[1, 2]);
    // Scrambled copy: same 2-path, constants in reversed relative order.
    let w2 = scramble(&w);
    assert_ne!(
        format!("{w:?}"),
        format!("{w2:?}"),
        "distinct presentations"
    );
    let mut t = Structure::new(sch);
    for i in 0..4u64 {
        for j in 0..4u64 {
            if (i + j) % 2 == 0 {
                t.add("E", &[i, j]);
            }
        }
    }
    let direct = hom_count(&w, &t);
    let (h0, m0) = hom_cache_stats();
    assert_eq!(hom_count_cached(&w, &t), direct);
    let (h1, m1) = hom_cache_stats();
    assert_eq!((h1, m1), (h0, m0 + 1), "first lookup misses");
    assert_eq!(hom_count_cached(&w2, &t), direct);
    let (h2, m2) = hom_cache_stats();
    assert_eq!(
        (h2, m2),
        (h1 + 1, m1),
        "fact-reordered isomorphic source must hit the canonical-key memo"
    );
}
