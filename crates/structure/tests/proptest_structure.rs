//! Property-based tests for structures, homomorphism counting and the
//! structure algebra (Lovász's Lemma 4 is the star witness).

use cqdet_structure::{
    all_loops_point, connected_components, dedup_up_to_iso, disjoint_union, hom_count,
    hom_count_factored, hom_enumerate, hom_exists, isomorphic, power, product, scalar_multiple,
    Nat, Schema, Structure, StructureExpr, StructureGenerator,
};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::with_relations([("E", 2), ("P", 1)])
}

fn random_structure(seed: u64, domain: usize, facts: usize) -> Structure {
    StructureGenerator::new(schema(), seed).random_with_facts(domain.max(1), facts)
}

fn random_connected(seed: u64, facts: usize) -> Structure {
    StructureGenerator::new(schema(), seed).random_connected(facts.max(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Renaming constants yields an isomorphic structure; isomorphic structures
    /// have identical left and right homomorphism counts against anything.
    #[test]
    fn isomorphism_invariance(seed in 0u64..10_000, facts in 0usize..6, probe_seed in 0u64..10_000) {
        let s = random_structure(seed, 4, facts);
        let renamed = s.map_constants(|c| c * 7 + 13);
        prop_assert!(isomorphic(&s, &renamed));
        let probe = random_structure(probe_seed, 3, 4);
        prop_assert_eq!(hom_count(&s, &probe), hom_count(&renamed, &probe));
        prop_assert_eq!(hom_count(&probe, &s), hom_count(&probe, &renamed));
        // compact() is also an isomorphism.
        prop_assert!(isomorphic(&s, &s.compact()));
    }

    /// The identity map is a homomorphism, so hom(A, A) ≥ 1 for every A, and
    /// hom composition preserves existence.
    #[test]
    fn identity_and_composition(seed in 0u64..10_000, facts in 0usize..6) {
        let a = random_structure(seed, 3, facts);
        prop_assert!(hom_exists(&a, &a));
        prop_assert!(hom_count(&a, &a) >= Nat::one());
        let b = random_structure(seed.wrapping_add(1), 3, 5);
        let c = random_structure(seed.wrapping_add(2), 3, 5);
        if hom_exists(&a, &b) && hom_exists(&b, &c) {
            prop_assert!(hom_exists(&a, &c));
        }
    }

    /// Every enumerated assignment is a genuine homomorphism, and the count
    /// matches the enumeration length.
    #[test]
    fn enumeration_is_sound_and_complete(seed in 0u64..10_000) {
        let a = random_connected(seed, 2);
        let b = random_structure(seed.wrapping_add(5), 3, 5);
        let homs = hom_enumerate(&a, &b);
        prop_assert_eq!(Nat::from_usize(homs.len()), hom_count(&a, &b));
        for h in &homs {
            for fact in a.facts() {
                let image: Vec<u64> = fact.args.iter().map(|x| h[x]).collect();
                prop_assert!(b.contains_fact(&fact.relation, &image));
            }
        }
    }

    /// Lemma 4, all five parts, on random structures.
    #[test]
    fn lemma_4(seed in 0u64..10_000, t in 0u64..4, exp in 0u64..3) {
        let connected = random_connected(seed, 2);
        let any = random_structure(seed.wrapping_add(1), 3, 3);
        let b = random_structure(seed.wrapping_add(2), 3, 4);
        let c = random_structure(seed.wrapping_add(3), 3, 4);
        // (1) and (2) need a connected source.
        prop_assert_eq!(
            hom_count(&connected, &disjoint_union(&b, &c)),
            hom_count(&connected, &b) + hom_count(&connected, &c)
        );
        prop_assert_eq!(
            hom_count(&connected, &scalar_multiple(t, &b)),
            Nat::from_u64(t) * hom_count(&connected, &b)
        );
        // (3), (4), (5) hold for arbitrary sources.
        prop_assert_eq!(
            hom_count(&any, &product(&b, &c)),
            hom_count(&any, &b) * hom_count(&any, &c)
        );
        prop_assert_eq!(hom_count(&any, &power(&b, exp)), hom_count(&any, &b).pow(exp));
        prop_assert_eq!(
            hom_count(&disjoint_union(&any, &connected), &c),
            hom_count(&any, &c) * hom_count(&connected, &c)
        );
        prop_assert_eq!(hom_count_factored(&any, &b), hom_count(&any, &b));
    }

    /// The all-loops point A⁰ absorbs: hom(x, A⁰) = 1, and A × A⁰ ≅ A.
    #[test]
    fn all_loops_point_is_a_unit(seed in 0u64..10_000, facts in 0usize..6) {
        let a = random_structure(seed, 3, facts);
        let unit = all_loops_point(&schema());
        prop_assert_eq!(hom_count(&a, &unit), Nat::one());
        prop_assert!(isomorphic(&product(&a, &unit), &a));
        prop_assert!(isomorphic(&power(&a, 1), &a));
    }

    /// Connected components partition facts and domain, each component is
    /// connected, and their disjoint union is isomorphic to the original.
    #[test]
    fn components_partition(seed in 0u64..10_000, facts in 0usize..8) {
        let s = random_structure(seed, 5, facts);
        let comps = connected_components(&s);
        let fact_total: usize = comps.iter().map(Structure::num_facts).sum();
        let dom_total: usize = comps.iter().map(Structure::domain_size).sum();
        prop_assert_eq!(fact_total, s.num_facts());
        prop_assert_eq!(dom_total, s.domain_size());
        for c in &comps {
            prop_assert!(cqdet_structure::is_connected(c));
        }
        let mut rebuilt = Structure::new(schema());
        for c in &comps {
            rebuilt = disjoint_union(&rebuilt, c);
        }
        prop_assert!(isomorphic(&rebuilt, &s));
    }

    /// De-duplication up to isomorphism is idempotent and produces pairwise
    /// non-isomorphic representatives covering every input.
    #[test]
    fn dedup_properties(seeds in prop::collection::vec(0u64..200, 1..6)) {
        let items: Vec<Structure> = seeds.iter().map(|&s| random_structure(s, 3, 2)).collect();
        let unique = dedup_up_to_iso(items.clone());
        for (i, a) in unique.iter().enumerate() {
            for b in &unique[i + 1..] {
                prop_assert!(!isomorphic(a, b));
            }
        }
        for item in &items {
            prop_assert!(unique.iter().any(|u| isomorphic(u, item)));
        }
        prop_assert_eq!(dedup_up_to_iso(unique.clone()).len(), unique.len());
    }

    /// Symbolic evaluation agrees with materialised brute-force counting.
    #[test]
    fn symbolic_matches_materialised(seed in 0u64..10_000, c1 in 0u64..4, c2 in 0u64..4, e in 0u64..3) {
        let w = random_connected(seed, 2);
        let b1 = random_structure(seed.wrapping_add(7), 3, 3);
        let b2 = random_structure(seed.wrapping_add(8), 2, 2);
        let expr = StructureExpr::weighted_sum(vec![
            (Nat::from_u64(c1), StructureExpr::base(b1.clone())),
            (Nat::from_u64(c2), StructureExpr::base(b2.clone()).pow(e)),
        ]);
        let symbolic = expr.hom_count_from_connected(&w);
        let concrete = expr
            .materialize(&schema(), 200)
            .expect("small enough to materialise");
        prop_assert_eq!(symbolic, hom_count(&w, &concrete));
    }

    /// Product and disjoint union are commutative and associative up to
    /// isomorphism.
    #[test]
    fn algebra_laws_up_to_iso(seed in 0u64..5000) {
        let a = random_structure(seed, 2, 2);
        let b = random_structure(seed.wrapping_add(1), 2, 2);
        let c = random_structure(seed.wrapping_add(2), 2, 2);
        prop_assert!(isomorphic(&disjoint_union(&a, &b), &disjoint_union(&b, &a)));
        prop_assert!(isomorphic(
            &disjoint_union(&disjoint_union(&a, &b), &c),
            &disjoint_union(&a, &disjoint_union(&b, &c))
        ));
        prop_assert!(isomorphic(&product(&a, &b), &product(&b, &a)));
    }
}
