//! Offline stand-in for the `proptest` crate.
//!
//! The sandbox this repository builds in has no access to crates.io, so this
//! crate re-implements exactly the subset of the proptest API that the
//! workspace's property tests use:
//!
//! * the `proptest!` macro with an optional `#![proptest_config(…)]` header,
//! * `any::<T>()` for the primitive integer types,
//! * integer range strategies (`0u64..10_000`, `-5i64..6`, …),
//! * tuples of strategies and `prop::collection::vec(strategy, size)`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking.  Failing inputs are reported verbatim; each test function runs a
//! fixed number of deterministically seeded random cases (default 256, or the
//! `ProptestConfig::with_cases` override), so failures are reproducible by
//! re-running the same test binary.

use std::ops::Range;

/// Deterministic generator state for one test function.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from the test function's name, so every test
    /// gets an independent but stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % span
    }
}

/// Runtime configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type (subset of `proptest::strategy::Strategy`).
pub trait Strategy: Sized {
    type Value: std::fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Restrict the strategy to values satisfying `predicate` (by rejection;
    /// gives up after 1000 consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        predicate: F,
    ) -> Filter<Self, F> {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }
}

/// Rejection-sampling filter over another strategy.
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}): too many rejected values", self.reason);
    }
}

/// `any::<T>()` — the full-range strategy for primitive integers.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait Arbitrary: std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                wide as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let off = rng.below(span);
                // Two's-complement wrap-around keeps this correct for every
                // integer width up to 128 bits.
                (self.start as i128).wrapping_add(off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::arbitrary(rng);
                }
                let span = hi.abs_diff(lo) as u128 + 1;
                let off = rng.below(span);
                (lo as i128).wrapping_add(off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Rejection over the full width; the starts used in practice
                // are tiny, so acceptance is near-certain.
                loop {
                    let v = <$t>::arbitrary(rng);
                    if v >= self.start {
                        return v;
                    }
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// `prop::collection` — vector strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification: a fixed length or a half-open range of lengths.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module path used by `prop::collection::vec(…)`.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Any, Arbitrary, Filter, ProptestConfig, Strategy, TestRng};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments are
/// drawn from strategies.  Each function runs `config.cases` deterministic
/// random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                // One tuple per case so a failure's panic message can be
                // correlated with the inputs below.
                let __inputs = ($(&$arg,)*);
                let __guard = $crate::__CaseReporter {
                    case: __case,
                    name: stringify!($name),
                    inputs: format!("{:?}", __inputs),
                };
                { $body }
                std::mem::forget(__guard);
            }
        }
    )*};
}

/// Prints the failing case on unwind, since there is no shrinking phase.
#[doc(hidden)]
pub struct __CaseReporter {
    pub case: u32,
    pub name: &'static str,
    pub inputs: String,
}

impl Drop for __CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest-shim: {} failed at case {} with inputs {}",
                self.name, self.case, self.inputs
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 0u64..100, b in -5i64..5) {
            prop_assert!(a < 100);
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn vectors_and_tuples(xs in prop::collection::vec((-3i64..4, 0u8..4), 1..6),
                              fixed in prop::collection::vec(0i64..10, 3)) {
            prop_assert!((1..6).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 3);
            for (x, d) in xs {
                prop_assert!((-3..4).contains(&x));
                prop_assert!(d < 4);
            }
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_any(x in any::<u64>(), y in any::<i128>()) {
            // Mostly checking that full-range generation compiles and runs.
            let _ = x.wrapping_add(y as u64);
        }
    }
}
