//! Offline stand-in for the `criterion` crate.
//!
//! The sandbox this repository builds in has no access to crates.io, so this
//! crate implements the subset of the criterion API that the bench targets in
//! `crates/bench/benches/` use: `Criterion`, `benchmark_group`, `sample_size`
//! / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up for `warm_up_time`, then
//! measured for `sample_size` samples; a sample times a batch of iterations
//! sized so that one sample lasts roughly `measurement_time / sample_size`.
//! The mean, minimum and maximum per-iteration times are printed in a
//! criterion-like format, and, when the `CQDET_BENCH_JSON` environment
//! variable names a file, appended to it as JSON lines:
//!
//! ```json
//! {"benchmark":"hom/count/flat/16","mean_ns":1234.5,"min_ns":...,"max_ns":...,"samples":10,"iters_per_sample":100}
//! ```

use std::fmt;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Passed to the closure given to `Bencher::iter`.
pub struct Bencher {
    /// Total time and iteration count of the measured samples.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run the routine until the warm-up budget is exhausted,
        // estimating the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size one sample so that sample_size samples fill measurement_time.
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9 / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Ok(path) = std::env::var("CQDET_BENCH_JSON") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"benchmark\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}\n",
                    name, mean, min, max, self.samples.len(), self.iters_per_sample
                );
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = f.write_all(line.as_bytes());
                }
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(full_name);
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.run(&full, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.run(&full, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(BenchmarkId::from_parameter(""), f);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let input = 12u64;
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        group.bench_with_input(BenchmarkId::new("mul", input), &input, |b, &i| {
            b.iter(|| black_box(i) * 3)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
