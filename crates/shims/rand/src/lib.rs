//! Offline stand-in for the `rand` crate.
//!
//! The workspace only needs deterministic, seeded pseudo-randomness for
//! workload generation (`StdRng::seed_from_u64`, `gen_range` over integer
//! ranges, `gen_bool`), and the sandbox this repository builds in has no
//! access to crates.io.  This crate provides exactly that subset with the
//! same module paths, backed by the public-domain xoshiro256** generator.
//!
//! It makes no attempt at API or value compatibility with the real `rand`
//! beyond what the workspace uses: streams produced by this crate differ
//! from the real `StdRng` for the same seed, but are stable across runs and
//! platforms — which is all the generators and benchmarks rely on.

use std::ops::Range;

pub mod rngs {
    /// Deterministic xoshiro256** generator (same role as `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seedable RNGs (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64, as the xoshiro authors recommend.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u64;
                // Rejection sampling: accept v only below the largest multiple
                // of span, so v % span is exactly uniform.
                let rem = (u64::MAX % span + 1) % span; // 2^64 mod span
                loop {
                    let v = rng.next_u64();
                    if rem == 0 || v <= u64::MAX - rem {
                        // Two's-complement arithmetic in u64, then truncate.
                        return (range.start as u64).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53-bit uniform float in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(0usize..17);
            assert_eq!(x, b.gen_range(0usize..17));
            assert!(x < 17);
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc, "different seeds must give different streams");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&heads),
            "suspicious balance: {heads}"
        );
    }

    #[test]
    fn signed_ranges() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
