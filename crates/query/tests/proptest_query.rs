//! Property-based tests for query parsing, printing, evaluation and
//! set-semantics containment.

use cqdet_bigint::Nat;
use cqdet_query::cq::common_schema;
use cqdet_query::eval::{eval_boolean_cq, eval_cq};
use cqdet_query::{parse_query, ConjunctiveQuery, PathQuery, QueryGenerator, UnionQuery};
use cqdet_structure::{disjoint_union, hom_exists, Schema, Structure, StructureGenerator};
use proptest::prelude::*;

fn random_boolean_cq(seed: u64, atoms: usize) -> ConjunctiveQuery {
    QueryGenerator::new(2, seed).random_boolean_cq("q", atoms.max(1), atoms.max(1) + 1, true)
}

fn random_db(seed: u64, domain: usize, facts: usize) -> Structure {
    StructureGenerator::new(Schema::binary(["R0", "R1"]), seed)
        .random_with_facts(domain.max(1), facts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pretty-print → parse is the identity on generated boolean CQs.
    #[test]
    fn print_parse_round_trip(seed in 0u64..10_000, atoms in 1usize..6) {
        let q = random_boolean_cq(seed, atoms);
        let printed = q.to_string();
        let reparsed = parse_query(&printed).unwrap();
        prop_assert!(reparsed.is_single_cq());
        prop_assert_eq!(reparsed.disjuncts()[0].atoms(), q.atoms());
        prop_assert_eq!(reparsed.disjuncts()[0].free_vars(), q.free_vars());
    }

    /// Path queries: word ↔ CQ round trip, prefixes compose, and display is
    /// parse-stable through the compact form.
    #[test]
    fn path_query_round_trips(letters in prop::collection::vec(0u8..3, 1..8)) {
        let word: String = letters.iter().map(|&l| (b'A' + l) as char).collect();
        let p = PathQuery::from_compact(&word);
        prop_assert_eq!(p.len(), word.len());
        prop_assert_eq!(PathQuery::from_cq(&p.to_cq("q")), Some(p.clone()));
        prop_assert_eq!(PathQuery::from_compact(&p.to_string()), p.clone());
        for i in 0..=p.len() {
            let pre = p.prefix(i);
            prop_assert!(pre.is_prefix_of(&p));
            let rest = p.strip_prefix(&pre).unwrap();
            prop_assert_eq!(pre.concat(&rest), p.clone());
        }
    }

    /// Boolean evaluation is multiplicative over disjoint unions of the
    /// *query* (because hom(A+B, D) = hom(A,D)·hom(B,D)), and the bag answer
    /// of a boolean query equals the homomorphism count.
    #[test]
    fn boolean_eval_properties(seed in 0u64..10_000, atoms in 1usize..4) {
        let q1 = random_boolean_cq(seed, atoms);
        let q2 = random_boolean_cq(seed.wrapping_add(1), atoms);
        let schema = common_schema(&[&q1, &q2]);
        let d = random_db(seed.wrapping_add(2), 3, 6);
        // Conjoining two boolean queries multiplies counts when their variable
        // sets are disjoint; rename q2's variables to force disjointness.
        let renamed: Vec<cqdet_query::Atom> = q2
            .atoms()
            .iter()
            .map(|a| cqdet_query::Atom {
                relation: a.relation.clone(),
                vars: a.vars.iter().map(|v| format!("{v}_r")).collect(),
            })
            .collect();
        let mut combined_atoms = q1.atoms().to_vec();
        combined_atoms.extend(renamed);
        let combined = ConjunctiveQuery::boolean("q1q2", combined_atoms);
        prop_assert_eq!(
            eval_boolean_cq(&combined, &schema, &d),
            eval_boolean_cq(&q1, &schema, &d) * eval_boolean_cq(&q2, &schema, &d)
        );
        // Evaluating over a disjoint union of databases: the boolean count of
        // a connected query adds up.
        if q1.is_connected() {
            let d2 = random_db(seed.wrapping_add(3), 3, 5);
            prop_assert_eq!(
                eval_boolean_cq(&q1, &schema, &disjoint_union(&d, &d2)),
                eval_boolean_cq(&q1, &schema, &d) + eval_boolean_cq(&q1, &schema, &d2)
            );
        }
    }

    /// The bag answer's total multiplicity for a non-boolean query equals the
    /// homomorphism count of its frozen body.
    #[test]
    fn bag_total_equals_hom_count(seed in 0u64..10_000) {
        let mut generator = QueryGenerator::new(2, seed);
        let base = generator.random_boolean_cq("b", 2, 3, true);
        // Promote one variable to a free variable.
        let free = base.atoms()[0].vars[0].clone();
        let q = ConjunctiveQuery::new("q", &[free.as_str()], base.atoms().to_vec());
        let schema = q.inferred_schema();
        let d = random_db(seed.wrapping_add(9), 3, 6);
        let bag = eval_cq(&q, &schema, &d);
        let boolean = ConjunctiveQuery::boolean("qb", q.atoms().to_vec());
        prop_assert_eq!(bag.total(), eval_boolean_cq(&boolean, &schema, &d));
    }

    /// Set-semantics containment is reflexive, transitive, and sound: if
    /// q ⊆_set v then on every database q > 0 implies v > 0.
    #[test]
    fn containment_properties(seed in 0u64..5000) {
        let a = random_boolean_cq(seed, 2);
        let b = random_boolean_cq(seed.wrapping_add(1), 2);
        let c = random_boolean_cq(seed.wrapping_add(2), 3);
        let schema = common_schema(&[&a, &b, &c]);
        prop_assert!(a.contained_in_set(&a, &schema));
        if a.contained_in_set(&b, &schema) && b.contained_in_set(&c, &schema) {
            prop_assert!(a.contained_in_set(&c, &schema));
        }
        if a.contained_in_set(&b, &schema) {
            for probe_seed in 0..3u64 {
                let d = random_db(seed.wrapping_add(100 + probe_seed), 3, 5);
                if !eval_boolean_cq(&a, &schema, &d).is_zero() {
                    prop_assert!(!eval_boolean_cq(&b, &schema, &d).is_zero());
                }
            }
        }
        // Containment agrees with its homomorphism characterisation.
        let (abody, _) = a.frozen_body_over(&schema);
        let (bbody, _) = b.frozen_body_over(&schema);
        prop_assert_eq!(a.contained_in_set(&b, &schema), hom_exists(&bbody, &abody));
    }

    /// UCQ evaluation is the sum over disjuncts, and permuting the disjuncts
    /// does not change the answer.
    #[test]
    fn ucq_sum_and_permutation(seed in 0u64..5000, n in 1usize..4) {
        let disjuncts: Vec<ConjunctiveQuery> = (0..n)
            .map(|i| random_boolean_cq(seed.wrapping_add(i as u64), 2))
            .collect();
        let refs: Vec<&ConjunctiveQuery> = disjuncts.iter().collect();
        let schema = common_schema(&refs);
        let d = random_db(seed.wrapping_add(77), 3, 6);
        let u = UnionQuery::new("u", disjuncts.clone());
        let total = cqdet_query::eval_boolean_ucq(&u, &schema, &d);
        let sum = disjuncts
            .iter()
            .fold(Nat::zero(), |acc, q| acc + eval_boolean_cq(q, &schema, &d));
        prop_assert_eq!(total.clone(), sum);
        let mut reversed = disjuncts.clone();
        reversed.reverse();
        let u2 = UnionQuery::new("u2", reversed);
        prop_assert_eq!(cqdet_query::eval_boolean_ucq(&u2, &schema, &d), total);
    }
}
