//! Conjunctive queries, unions of conjunctive queries and path queries.
//!
//! A conjunctive query `Φ = ∃y⃗ φ(x⃗, y⃗)` is a conjunction of relational atoms
//! over free variables `x⃗` and existential variables `y⃗` (Section 2.1).  Under
//! **bag semantics** (the subject of the paper) the result `Φ(D)` is the
//! multiset whose multiplicity at `a⃗` is the number of homomorphisms of the
//! frozen body into `D` sending `x⃗` to `a⃗`; a boolean query (no free
//! variables) simply counts homomorphisms, `q(D) = |hom(q, D)|`.
//!
//! This crate provides:
//!
//! * [`ConjunctiveQuery`], [`UnionQuery`] and [`PathQuery`] — the three query
//!   classes the paper studies,
//! * a small Datalog-style parser ([`parse_query`]) and pretty-printer,
//! * bag- and set-semantics evaluation ([`eval`]),
//! * set-semantics containment of boolean queries (`q ⊆_set q'` iff
//!   `hom(q', q) ≠ ∅`),
//! * random workload generators used by the benchmark harness.

// Request-reachable code must fail as typed errors, never panics; tests are
// exempt, justified sites carry individual `#[allow]`s with the invariant.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod cq;
pub mod eval;
pub mod generator;
pub mod parse;
pub mod path;
pub mod ucq;

pub use cq::{Atom, ConjunctiveQuery};
pub use eval::{eval_boolean_cq, eval_boolean_ucq, eval_cq, BagAnswers};
pub use generator::QueryGenerator;
pub use parse::{parse_queries, parse_query, ParseQueryError};
pub use path::PathQuery;
pub use ucq::UnionQuery;

pub use cqdet_structure::{Schema, Structure};
