//! Conjunctive queries: AST, frozen bodies, connected components, containment.

use cqdet_structure::{
    connected_components, dedup_up_to_iso, hom_exists, isomorphic, Const, Schema, Structure,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relational atom `R(x₁, …, x_k)` over variable names.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Atom {
    /// Relation symbol.
    pub relation: String,
    /// Variable names.
    pub vars: Vec<String>,
}

impl Atom {
    /// Construct an atom.
    pub fn new<S: Into<String>>(relation: S, vars: &[&str]) -> Self {
        Atom {
            relation: relation.into(),
            vars: vars.iter().map(|v| v.to_string()).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.vars.join(","))
    }
}

/// A conjunctive query `∃ y⃗ . φ(x⃗, y⃗)`.
///
/// Free variables are listed explicitly (`free_vars`); every other variable of
/// the body is existentially quantified.  A query with no free variables is
/// **boolean**; boolean queries are identified with their frozen bodies
/// throughout the paper and this workspace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    name: String,
    free_vars: Vec<String>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Construct a query with the given free variables and body atoms.
    ///
    /// Panics if a free variable does not occur in the body (the paper's
    /// queries are always "safe" in this sense).
    pub fn new<S: Into<String>>(name: S, free_vars: &[&str], atoms: Vec<Atom>) -> Self {
        let q = ConjunctiveQuery {
            name: name.into(),
            free_vars: free_vars.iter().map(|v| v.to_string()).collect(),
            atoms,
        };
        for v in &q.free_vars {
            assert!(
                q.body_vars().contains(v),
                "free variable {v} does not occur in the body of {}",
                q.name
            );
        }
        q
    }

    /// Construct a boolean query (no free variables).
    pub fn boolean<S: Into<String>>(name: S, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery::new(name, &[], atoms)
    }

    /// The query's name (used for display and diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The free variables `x⃗`.
    pub fn free_vars(&self) -> &[String] {
        &self.free_vars
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The arity `|x⃗|` of the query.
    pub fn arity(&self) -> usize {
        self.free_vars.len()
    }

    /// Whether the query is boolean.
    pub fn is_boolean(&self) -> bool {
        self.free_vars.is_empty()
    }

    /// All variables occurring in the body, in first-occurrence order.
    pub fn body_vars(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in &a.vars {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// The existential variables `y⃗` (body variables that are not free).
    pub fn existential_vars(&self) -> Vec<String> {
        self.body_vars()
            .into_iter()
            .filter(|v| !self.free_vars.contains(v))
            .collect()
    }

    /// The minimal schema containing every relation used by this query, with
    /// arities inferred from the atoms.
    ///
    /// Panics if the same relation is used with two different arities.
    pub fn inferred_schema(&self) -> Schema {
        let mut schema = Schema::new();
        add_atoms_to_schema(&mut schema, self);
        schema
    }

    /// The frozen body (Section 2.1): the structure obtained by bijectively
    /// replacing variables with fresh constants.  Returns the structure and
    /// the variable → constant mapping.
    ///
    /// The structure is built over `schema` (which must contain every relation
    /// of the query) so that different queries freeze over a common schema.
    pub fn frozen_body_over(&self, schema: &Schema) -> (Structure, BTreeMap<String, Const>) {
        // Hot path of the decision procedure: map variables by borrowed name
        // and add facts by interned relation id, so freezing allocates no
        // per-variable or per-relation strings.
        let mut by_ref: BTreeMap<&str, Const> = BTreeMap::new();
        let mut next: Const = 0;
        for a in &self.atoms {
            for v in &a.vars {
                by_ref.entry(v.as_str()).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
            }
        }
        let mut s = Structure::new(schema.clone());
        for a in &self.atoms {
            // Documented precondition: `schema` must contain every relation
            // of the query.  The decision pipeline always freezes over
            // `common_schema` of all queries involved, so this is not
            // reachable from a request.
            #[allow(clippy::panic)]
            let rel = s
                .rel_id(&a.relation)
                .unwrap_or_else(|| panic!("unknown relation {} in fact", a.relation));
            let args: Vec<Const> = a.vars.iter().map(|v| by_ref[v.as_str()]).collect();
            s.add_by_id(rel, args);
        }
        let mapping = by_ref
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        (s, mapping)
    }

    /// The frozen body over the query's own inferred schema.
    pub fn frozen_body(&self) -> (Structure, BTreeMap<String, Const>) {
        self.frozen_body_over(&self.inferred_schema())
    }

    /// The connected components of this (boolean) query, as structures over
    /// `schema` — the raw material of the basis `W` (Definition 27).
    pub fn components_over(&self, schema: &Schema) -> Vec<Structure> {
        let (body, _) = self.frozen_body_over(schema);
        connected_components(&body)
    }

    /// Whether this boolean query is connected (used by Corollary 33).
    pub fn is_connected(&self) -> bool {
        let (body, _) = self.frozen_body();
        cqdet_structure::is_connected(&body)
    }

    /// Set-semantics containment of **boolean** queries:
    /// `self ⊆_set other` iff every structure satisfying `self` satisfies
    /// `other`, iff `hom(other, self) ≠ ∅` (Section 2.1).
    ///
    /// Panics if either query is not boolean.
    pub fn contained_in_set(&self, other: &ConjunctiveQuery, schema: &Schema) -> bool {
        assert!(
            self.is_boolean() && other.is_boolean(),
            "contained_in_set is defined for boolean queries"
        );
        let (self_body, _) = self.frozen_body_over(schema);
        let (other_body, _) = other.frozen_body_over(schema);
        hom_exists(&other_body, &self_body)
    }

    /// Set-semantics equivalence of boolean queries (containment both ways).
    pub fn equivalent_set(&self, other: &ConjunctiveQuery, schema: &Schema) -> bool {
        self.contained_in_set(other, schema) && other.contained_in_set(self, schema)
    }

    /// Whether two boolean queries have isomorphic frozen bodies.
    pub fn isomorphic_to(&self, other: &ConjunctiveQuery, schema: &Schema) -> bool {
        let (a, _) = self.frozen_body_over(schema);
        let (b, _) = other.frozen_body_over(schema);
        isomorphic(&a, &b)
    }

    /// Rename the query.
    pub fn with_name<S: Into<String>>(mut self, name: S) -> Self {
        self.name = name.into();
        self
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) :- ", self.name, self.free_vars.join(","))?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Fold one query's atoms into `schema` in place, asserting that every
/// relation keeps a consistent arity (shared by
/// [`ConjunctiveQuery::inferred_schema`] and [`common_schema`]).
fn add_atoms_to_schema(schema: &mut Schema, q: &ConjunctiveQuery) {
    for a in q.atoms() {
        if let Some(existing) = schema.arity(&a.relation) {
            assert_eq!(
                existing,
                a.vars.len(),
                "relation {} used with conflicting arities",
                a.relation
            );
        } else {
            schema.add_relation(a.relation.clone(), a.vars.len());
        }
    }
}

/// Build the common schema of a set of queries (arity inferred from atoms).
///
/// Single in-place pass over all atoms (no per-query schema allocation or
/// clone-and-union); panics on conflicting arities like [`Schema::union`].
pub fn common_schema(queries: &[&ConjunctiveQuery]) -> Schema {
    let mut schema = Schema::new();
    for q in queries {
        add_atoms_to_schema(&mut schema, q);
    }
    schema
}

/// The basis `W` of Definition 27: the pairwise non-isomorphic connected
/// components of `Σ_{q ∈ queries} q` (frozen over `schema`).
pub fn component_basis(queries: &[&ConjunctiveQuery], schema: &Schema) -> Vec<Structure> {
    let mut all = Vec::new();
    for q in queries {
        all.extend(q.components_over(schema));
    }
    dedup_up_to_iso(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars)
    }

    /// The query q of Example 2: ∃u,y,z P(u,x), R(x,y), S(y,z)  (free x).
    fn example2_q() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "q",
            &["x"],
            vec![
                atom("P", &["u", "x"]),
                atom("R", &["x", "y"]),
                atom("S", &["y", "z"]),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let q = example2_q();
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert_eq!(q.free_vars(), &["x".to_string()]);
        assert_eq!(q.body_vars(), vec!["u", "x", "y", "z"]);
        assert_eq!(q.existential_vars(), vec!["u", "y", "z"]);
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.to_string(), "q(x) :- P(u,x), R(x,y), S(y,z)");
    }

    #[test]
    #[should_panic(expected = "does not occur")]
    fn unsafe_query_panics() {
        let _ = ConjunctiveQuery::new("bad", &["x"], vec![atom("R", &["y", "z"])]);
    }

    #[test]
    fn inferred_schema() {
        let q = example2_q();
        let s = q.inferred_schema();
        assert_eq!(s.arity("P"), Some(2));
        assert_eq!(s.arity("R"), Some(2));
        assert_eq!(s.arity("S"), Some(2));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "conflicting arities")]
    fn conflicting_arity_panics() {
        let q = ConjunctiveQuery::boolean("bad", vec![atom("R", &["x", "y"]), atom("R", &["x"])]);
        let _ = q.inferred_schema();
    }

    #[test]
    fn frozen_body_shape() {
        let q = example2_q();
        let (body, mapping) = q.frozen_body();
        assert_eq!(body.num_facts(), 3);
        assert_eq!(body.domain_size(), 4);
        assert_eq!(mapping.len(), 4);
        // The frozen body contains P(c_u, c_x).
        assert!(body.contains_fact("P", &[mapping["u"], mapping["x"]]));
    }

    #[test]
    fn boolean_query_components() {
        // ∃… R(x,y), R(z,w): two isomorphic connected components.
        let q =
            ConjunctiveQuery::boolean("q", vec![atom("R", &["x", "y"]), atom("R", &["z", "w"])]);
        let schema = q.inferred_schema();
        let comps = q.components_over(&schema);
        assert_eq!(comps.len(), 2);
        assert!(isomorphic(&comps[0], &comps[1]));
        assert!(!q.is_connected());
        let basis = component_basis(&[&q], &schema);
        assert_eq!(basis.len(), 1);
    }

    #[test]
    fn set_containment_of_boolean_queries() {
        // q = ∃x,y,z R(x,y), R(y,z)  (2-path);  v = ∃x,y R(x,y)  (1 edge).
        let q =
            ConjunctiveQuery::boolean("q", vec![atom("R", &["x", "y"]), atom("R", &["y", "z"])]);
        let v = ConjunctiveQuery::boolean("v", vec![atom("R", &["x", "y"])]);
        let schema = common_schema(&[&q, &v]);
        // Every structure with a 2-path has an edge: q ⊆ v.
        assert!(q.contained_in_set(&v, &schema));
        // But not the other way round.
        assert!(!v.contained_in_set(&q, &schema));
        // A query is contained in itself, and in a loop-query it is not.
        assert!(q.contained_in_set(&q, &schema));
        let loopq = ConjunctiveQuery::boolean("l", vec![atom("R", &["x", "x"])]);
        assert!(loopq.contained_in_set(&v, &schema));
        assert!(!v.contained_in_set(&loopq, &schema));
        assert!(!q.equivalent_set(&v, &schema));
        assert!(q.equivalent_set(&q, &schema));
    }

    #[test]
    fn isomorphic_queries() {
        let a = ConjunctiveQuery::boolean("a", vec![atom("R", &["x", "y"])]);
        let b = ConjunctiveQuery::boolean("b", vec![atom("R", &["s", "t"])]);
        let schema = common_schema(&[&a, &b]);
        assert!(a.isomorphic_to(&b, &schema));
        let c = ConjunctiveQuery::boolean("c", vec![atom("R", &["x", "x"])]);
        assert!(!a.isomorphic_to(&c, &schema));
    }

    #[test]
    fn component_basis_across_queries() {
        // v1 = edge + loop; v2 = edge: basis = {edge, loop}.
        let v1 =
            ConjunctiveQuery::boolean("v1", vec![atom("R", &["x", "y"]), atom("R", &["z", "z"])]);
        let v2 = ConjunctiveQuery::boolean("v2", vec![atom("R", &["a", "b"])]);
        let schema = common_schema(&[&v1, &v2]);
        let basis = component_basis(&[&v1, &v2], &schema);
        assert_eq!(basis.len(), 2);
    }
}
