//! Random query-workload generation for the benchmark harness.
//!
//! The paper contains no experimental workloads, so `EXPERIMENTS.md` defines
//! synthetic ones; this module is their implementation.  Three families are
//! provided:
//!
//! * random boolean conjunctive queries (optionally connected),
//! * random *view sets + query* instances for the Theorem 3 decision
//!   procedure, including a "plant a determined instance" mode where the
//!   query is a disjoint sum of copies of view components (so that the
//!   expected answer is known),
//! * random path-query workloads for the Theorem 1 machinery.

use crate::cq::{Atom, ConjunctiveQuery};
use crate::path::PathQuery;
use cqdet_structure::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic (seeded) random query generator.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    relations: Vec<String>,
    seed: u64,
    counter: u64,
}

impl QueryGenerator {
    /// A generator producing queries over `num_relations` binary relations
    /// named `R0, R1, …`.
    pub fn new(num_relations: usize, seed: u64) -> Self {
        QueryGenerator {
            relations: (0..num_relations).map(|i| format!("R{i}")).collect(),
            seed,
            counter: 0,
        }
    }

    /// The (binary) schema of the generated queries.
    pub fn schema(&self) -> Schema {
        Schema::binary(self.relations.iter().map(String::as_str))
    }

    fn next_rng(&mut self) -> StdRng {
        self.counter += 1;
        StdRng::seed_from_u64(self.seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ self.counter)
    }

    /// A random boolean CQ with `num_atoms` binary atoms over at most
    /// `num_vars` variables.  If `connected` is set, consecutive atoms share a
    /// variable, so the query body is connected.
    pub fn random_boolean_cq(
        &mut self,
        name: &str,
        num_atoms: usize,
        num_vars: usize,
        connected: bool,
    ) -> ConjunctiveQuery {
        let mut rng = self.next_rng();
        assert!(num_atoms >= 1 && num_vars >= 1);
        let var = |i: usize| format!("v{i}");
        let mut atoms = Vec::with_capacity(num_atoms);
        let mut used_vars: Vec<usize> = Vec::new();
        for i in 0..num_atoms {
            let rel = self.relations[rng.gen_range(0..self.relations.len())].clone();
            let a = if connected && i > 0 {
                used_vars[rng.gen_range(0..used_vars.len())]
            } else {
                rng.gen_range(0..num_vars)
            };
            let b = rng.gen_range(0..num_vars);
            for v in [a, b] {
                if !used_vars.contains(&v) {
                    used_vars.push(v);
                }
            }
            atoms.push(Atom {
                relation: rel,
                vars: vec![var(a), var(b)],
            });
        }
        ConjunctiveQuery::boolean(name, atoms)
    }

    /// A random determinacy instance `(V₀, q)` of boolean CQs.
    ///
    /// When `plant_determined` is set, `q` is built as a disjoint sum of
    /// components copied from the views, so that its vector representation is
    /// a non-negative integer combination of the view vectors and the instance
    /// is determined by construction (Lemma 31 (⇐)).  Otherwise `q` is an
    /// independent random query.
    pub fn random_instance(
        &mut self,
        num_views: usize,
        atoms_per_view: usize,
        plant_determined: bool,
    ) -> (Vec<ConjunctiveQuery>, ConjunctiveQuery) {
        let views: Vec<ConjunctiveQuery> = (0..num_views)
            .map(|i| {
                self.random_boolean_cq(&format!("v{i}"), atoms_per_view, atoms_per_view + 1, true)
            })
            .collect();
        let q = if plant_determined && !views.is_empty() {
            // q := the disjoint sum of all views (vector = sum of view vectors).
            let mut atoms = Vec::new();
            for (i, v) in views.iter().enumerate() {
                for a in v.atoms() {
                    atoms.push(Atom {
                        relation: a.relation.clone(),
                        vars: a.vars.iter().map(|x| format!("{x}_copy{i}")).collect(),
                    });
                }
            }
            ConjunctiveQuery::boolean("q", atoms)
        } else {
            self.random_boolean_cq("q", atoms_per_view, atoms_per_view + 1, true)
        };
        (views, q)
    }

    /// A random path query of the given length.
    pub fn random_path_query(&mut self, length: usize) -> PathQuery {
        let mut rng = self.next_rng();
        PathQuery::new(
            (0..length).map(|_| self.relations[rng.gen_range(0..self.relations.len())].clone()),
        )
    }

    /// A random path-determinacy instance: a query of length `query_len` and
    /// `num_views` views.  When `derivable` is set, the views are factors of a
    /// factorisation of `q`, so that `ε ⇝ q` holds in `G_{q,V}` and the
    /// instance is determined.
    pub fn random_path_instance(
        &mut self,
        query_len: usize,
        num_views: usize,
        view_len: usize,
        derivable: bool,
    ) -> (Vec<PathQuery>, PathQuery) {
        let mut rng = self.next_rng();
        let q = self.random_path_query(query_len);
        let mut views = Vec::with_capacity(num_views);
        if derivable {
            // Cut q into consecutive chunks; those views alone let us walk ε → q.
            let mut start = 0;
            while start < q.len() {
                let end = (start + view_len.max(1)).min(q.len());
                views.push(PathQuery::new(q.letters()[start..end].to_vec()));
                start = end;
            }
        }
        while views.len() < num_views {
            views.push(self.random_path_query(view_len.max(1) + rng.gen_range(0..2)));
        }
        views.truncate(num_views.max(views.len()));
        (views, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::common_schema;

    #[test]
    fn deterministic_and_shaped() {
        let mut g1 = QueryGenerator::new(3, 11);
        let mut g2 = QueryGenerator::new(3, 11);
        let a = g1.random_boolean_cq("a", 4, 5, true);
        let b = g2.random_boolean_cq("a", 4, 5, true);
        assert_eq!(a, b);
        assert_eq!(a.atoms().len(), 4);
        assert!(a.is_boolean());
        assert!(a.is_connected());
    }

    #[test]
    fn connected_flag() {
        let mut g = QueryGenerator::new(2, 3);
        for i in 0..10 {
            let q = g.random_boolean_cq(&format!("q{i}"), 5, 8, true);
            assert!(q.is_connected(), "query {q} should be connected");
        }
    }

    #[test]
    fn schema_covers_generated_queries() {
        let mut g = QueryGenerator::new(4, 9);
        let q = g.random_boolean_cq("q", 6, 4, false);
        let schema = g.schema();
        for a in q.atoms() {
            assert_eq!(schema.arity(&a.relation), Some(2));
        }
    }

    #[test]
    fn planted_instances_sum_views() {
        let mut g = QueryGenerator::new(2, 21);
        let (views, q) = g.random_instance(3, 2, true);
        assert_eq!(views.len(), 3);
        let expected_atoms: usize = views.iter().map(|v| v.atoms().len()).sum();
        assert_eq!(q.atoms().len(), expected_atoms);
        // All queries live in the generator's schema.
        let all: Vec<&ConjunctiveQuery> = views.iter().chain(std::iter::once(&q)).collect();
        let schema = common_schema(&all);
        assert!(schema.is_binary());
    }

    #[test]
    fn path_instances() {
        let mut g = QueryGenerator::new(3, 5);
        let (views, q) = g.random_path_instance(6, 4, 2, true);
        assert_eq!(q.len(), 6);
        assert!(views.len() >= 3, "need at least the covering chunks");
        // The concatenation of the first ceil(6/2)=3 views is q.
        let joined = views[..3]
            .iter()
            .fold(PathQuery::epsilon(), |acc, v| acc.concat(v));
        assert_eq!(joined, q);
        let (views2, q2) = g.random_path_instance(5, 2, 2, false);
        assert_eq!(q2.len(), 5);
        assert_eq!(views2.len(), 2);
    }
}
