//! Path queries (Section 3) and their identification with words over Σ.
//!
//! For a binary schema Σ, a path query is a CQ of the form
//! `Λ(x, y) = ∃x₁…x_{n−1} R₁(x, x₁), R₂(x₁, x₂), …, R_n(x_{n−1}, y)`;
//! the paper identifies it with the word `R₁R₂…R_n ∈ Σ*`.  The empty word `ε`
//! is identified with the identity query `x = y` (footnote 12) — it is not a
//! valid path query, but it appears as a vertex of the prefix graph `G_{q,V}`.

use crate::cq::{Atom, ConjunctiveQuery};
use cqdet_structure::{Schema, Structure};
use std::fmt;

/// A path query, represented as its word over the relation alphabet.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PathQuery {
    word: Vec<String>,
}

impl PathQuery {
    /// The empty word `ε` (the identity query; not a valid path query but a
    /// vertex of `G_{q,V}`).
    pub fn epsilon() -> Self {
        PathQuery { word: Vec::new() }
    }

    /// A path query from a sequence of relation names.
    pub fn new<I, S>(letters: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PathQuery {
            word: letters.into_iter().map(Into::into).collect(),
        }
    }

    /// Parse a word where every letter is a single character
    /// (e.g. `"ABC"` → `A·B·C`); convenient for the paper's examples.
    pub fn from_compact(word: &str) -> Self {
        PathQuery {
            word: word.chars().map(|c| c.to_string()).collect(),
        }
    }

    /// The letters (relation names) of the word.
    pub fn letters(&self) -> &[String] {
        &self.word
    }

    /// The length `|Λ|` of the word.
    pub fn len(&self) -> usize {
        self.word.len()
    }

    /// Whether this is the empty word `ε`.
    pub fn is_empty(&self) -> bool {
        self.word.is_empty()
    }

    /// Concatenation of two words.
    pub fn concat(&self, other: &PathQuery) -> PathQuery {
        let mut w = self.word.clone();
        w.extend(other.word.iter().cloned());
        PathQuery { word: w }
    }

    /// The prefix of length `n`.
    pub fn prefix(&self, n: usize) -> PathQuery {
        PathQuery {
            word: self.word[..n.min(self.word.len())].to_vec(),
        }
    }

    /// All prefixes, from `ε` up to the full word (the vertex set of `G_{q,V}`).
    pub fn prefixes(&self) -> Vec<PathQuery> {
        (0..=self.word.len()).map(|i| self.prefix(i)).collect()
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &PathQuery) -> bool {
        other.word.len() >= self.word.len() && other.word[..self.word.len()] == self.word[..]
    }

    /// If `self = prefix · rest`, return `rest`.
    pub fn strip_prefix(&self, prefix: &PathQuery) -> Option<PathQuery> {
        if prefix.is_prefix_of(self) {
            Some(PathQuery {
                word: self.word[prefix.len()..].to_vec(),
            })
        } else {
            None
        }
    }

    /// The minimal binary schema over which this path query is defined.
    pub fn inferred_schema(&self) -> Schema {
        Schema::binary(self.word.iter().map(String::as_str))
    }

    /// Convert to a conjunctive query with free variables `x` (source) and
    /// `y` (target): `Λ(x,y) = ∃x₁…x_{n−1} R₁(x,x₁), …, R_n(x_{n−1},y)`.
    ///
    /// Panics on the empty word, which is not a valid path query.
    pub fn to_cq(&self, name: &str) -> ConjunctiveQuery {
        assert!(
            !self.is_empty(),
            "the empty word is not a valid path query (footnote 12)"
        );
        let n = self.word.len();
        let var = |i: usize| -> String {
            if i == 0 {
                "x".to_string()
            } else if i == n {
                "y".to_string()
            } else {
                format!("x{i}")
            }
        };
        let atoms: Vec<Atom> = self
            .word
            .iter()
            .enumerate()
            .map(|(i, rel)| Atom {
                relation: rel.clone(),
                vars: vec![var(i), var(i + 1)],
            })
            .collect();
        ConjunctiveQuery::new(name, &["x", "y"], atoms)
    }

    /// The frozen "path structure" of this word over `schema`:
    /// constants `0 → 1 → … → n` linked by the letters of the word.
    /// (For `ε` this is a single isolated element.)
    pub fn to_structure(&self, schema: &Schema) -> Structure {
        let mut s = Structure::new(schema.clone());
        if self.word.is_empty() {
            s.add_isolated(0);
            return s;
        }
        for (i, rel) in self.word.iter().enumerate() {
            s.add(rel, &[i as u64, (i + 1) as u64]);
        }
        s
    }

    /// Extract a path query from a conjunctive query of path shape, if it is
    /// one (binary atoms forming a simple directed chain from the first free
    /// variable to the second).
    pub fn from_cq(cq: &ConjunctiveQuery) -> Option<PathQuery> {
        if cq.free_vars().len() != 2 {
            return None;
        }
        if cq.atoms().iter().any(|a| a.vars.len() != 2) {
            return None;
        }
        let start = &cq.free_vars()[0];
        let end = &cq.free_vars()[1];
        // Follow the chain from `start`.
        let mut word = Vec::new();
        let mut current = start.clone();
        let mut remaining: Vec<&Atom> = cq.atoms().iter().collect();
        while current != *end {
            let pos = remaining.iter().position(|a| a.vars[0] == current)?;
            let atom = remaining.remove(pos);
            word.push(atom.relation.clone());
            current = atom.vars[1].clone();
            if word.len() > cq.atoms().len() {
                return None;
            }
        }
        if !remaining.is_empty() {
            return None;
        }
        // Each intermediate variable must be used exactly twice (chain shape):
        // this is guaranteed by the successful traversal consuming all atoms.
        Some(PathQuery { word })
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.word.is_empty() {
            return write!(f, "ε");
        }
        // Compact rendering when every letter is a single character.
        if self.word.iter().all(|l| l.chars().count() == 1) {
            for l in &self.word {
                write!(f, "{l}")?;
            }
            Ok(())
        } else {
            write!(f, "{}", self.word.join("·"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq;
    use cqdet_structure::Structure;

    #[test]
    fn word_basics() {
        let q = PathQuery::from_compact("ABC");
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.to_string(), "ABC");
        assert_eq!(PathQuery::epsilon().to_string(), "ε");
        assert_eq!(q.letters(), &["A", "B", "C"]);
        let named = PathQuery::new(["edge", "edge"]);
        assert_eq!(named.to_string(), "edge·edge");
    }

    #[test]
    fn prefixes_and_concat() {
        let q = PathQuery::from_compact("ABCD");
        let ps = q.prefixes();
        assert_eq!(ps.len(), 5);
        assert_eq!(ps[0], PathQuery::epsilon());
        assert_eq!(ps[4], q);
        assert!(ps[2].is_prefix_of(&q));
        assert!(!q.is_prefix_of(&ps[2]));
        assert_eq!(ps[2].concat(&PathQuery::from_compact("CD")), q);
        assert_eq!(q.strip_prefix(&ps[2]), Some(PathQuery::from_compact("CD")));
        assert_eq!(q.strip_prefix(&PathQuery::from_compact("B")), None);
    }

    #[test]
    fn to_cq_shape() {
        let q = PathQuery::from_compact("AB");
        let cq = q.to_cq("q");
        assert_eq!(cq.arity(), 2);
        assert_eq!(cq.atoms().len(), 2);
        assert_eq!(cq.to_string(), "q(x,y) :- A(x,x1), B(x1,y)");
        // Round trip.
        assert_eq!(PathQuery::from_cq(&cq), Some(q));
    }

    #[test]
    #[should_panic(expected = "not a valid path query")]
    fn epsilon_to_cq_panics() {
        let _ = PathQuery::epsilon().to_cq("e");
    }

    #[test]
    fn from_cq_rejects_non_paths() {
        // A fork is not a path.
        let fork = ConjunctiveQuery::new(
            "f",
            &["x", "y"],
            vec![Atom::new("A", &["x", "y"]), Atom::new("A", &["x", "z"])],
        );
        assert_eq!(PathQuery::from_cq(&fork), None);
        // Wrong arity.
        let b = ConjunctiveQuery::boolean("b", vec![Atom::new("A", &["x", "y"])]);
        assert_eq!(PathQuery::from_cq(&b), None);
        // A cycle plus the path: leftover atoms → not a path.
        let extra = ConjunctiveQuery::new(
            "e",
            &["x", "y"],
            vec![Atom::new("A", &["x", "y"]), Atom::new("A", &["z", "z"])],
        );
        assert_eq!(PathQuery::from_cq(&extra), None);
    }

    #[test]
    fn evaluation_of_path_queries() {
        let q = PathQuery::from_compact("AB");
        let schema = Schema::binary(["A", "B"]);
        let mut d = Structure::new(schema.clone());
        d.add("A", &[0, 1]);
        d.add("B", &[1, 2]);
        d.add("B", &[1, 3]);
        let answers = eval_cq(&q.to_cq("q"), &schema, &d);
        assert_eq!(answers.multiplicity(&[0, 2]), cqdet_bigint::Nat::one());
        assert_eq!(answers.multiplicity(&[0, 3]), cqdet_bigint::Nat::one());
        assert_eq!(answers.total(), cqdet_bigint::Nat::from_u64(2));
    }

    #[test]
    fn path_structure() {
        let schema = Schema::binary(["A", "B"]);
        let s = PathQuery::from_compact("AB").to_structure(&schema);
        assert_eq!(s.domain_size(), 3);
        assert!(s.contains_fact("A", &[0, 1]));
        assert!(s.contains_fact("B", &[1, 2]));
        let eps = PathQuery::epsilon().to_structure(&schema);
        assert_eq!(eps.domain_size(), 1);
        assert_eq!(eps.num_facts(), 0);
    }
}
