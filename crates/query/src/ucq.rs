//! Unions of conjunctive queries (UCQs).

use crate::cq::ConjunctiveQuery;
use cqdet_structure::Schema;
use std::fmt;

/// A union (disjunction) of boolean conjunctive queries.
///
/// Under bag semantics the result of a boolean UCQ over `D` is the **sum** of
/// the results of its disjuncts (Section 2.1) — so, unlike in the set world,
/// repeating a disjunct changes the query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionQuery {
    name: String,
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Construct a UCQ from its disjuncts.
    ///
    /// All disjuncts must have the same arity.
    pub fn new<S: Into<String>>(name: S, disjuncts: Vec<ConjunctiveQuery>) -> Self {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        let arity = disjuncts[0].arity();
        assert!(
            disjuncts.iter().all(|d| d.arity() == arity),
            "all disjuncts of a UCQ must have the same arity"
        );
        UnionQuery {
            name: name.into(),
            disjuncts,
        }
    }

    /// A UCQ with a single disjunct (every CQ is a UCQ).
    pub fn from_cq(cq: ConjunctiveQuery) -> Self {
        let name = cq.name().to_string();
        UnionQuery::new(name, vec![cq])
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Always false (a UCQ has at least one disjunct).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The arity of the UCQ.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// Whether the UCQ is boolean.
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// Whether the UCQ is a single conjunctive query.
    pub fn is_single_cq(&self) -> bool {
        self.disjuncts.len() == 1
    }

    /// The minimal schema containing every relation of every disjunct.
    pub fn inferred_schema(&self) -> Schema {
        let mut s = Schema::new();
        for d in &self.disjuncts {
            s = s.union(&d.inferred_schema());
        }
        s
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∨  ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Atom;

    fn cq(name: &str, rel: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(name, vec![Atom::new(rel, &["x", "y"])])
    }

    #[test]
    fn construction() {
        let u = UnionQuery::new("u", vec![cq("a", "R"), cq("b", "S")]);
        assert_eq!(u.len(), 2);
        assert!(u.is_boolean());
        assert!(!u.is_single_cq());
        assert!(!u.is_empty());
        assert_eq!(u.arity(), 0);
        assert_eq!(u.name(), "u");
        let s = u.inferred_schema();
        assert!(s.contains("R") && s.contains("S"));
        assert!(u.to_string().contains("∨"));
    }

    #[test]
    fn from_single_cq() {
        let u = UnionQuery::from_cq(cq("a", "R"));
        assert!(u.is_single_cq());
        assert_eq!(u.name(), "a");
    }

    #[test]
    #[should_panic(expected = "at least one disjunct")]
    fn empty_ucq_panics() {
        let _ = UnionQuery::new("u", vec![]);
    }

    #[test]
    #[should_panic(expected = "same arity")]
    fn mixed_arity_panics() {
        let unary = ConjunctiveQuery::new("v", &["x"], vec![Atom::new("R", &["x", "y"])]);
        let _ = UnionQuery::new("u", vec![cq("a", "R"), unary]);
    }
}
