//! Bag-semantics (and set-semantics) evaluation of queries over structures.

use crate::cq::ConjunctiveQuery;
use crate::ucq::UnionQuery;
use cqdet_bigint::Nat;
use cqdet_structure::{hom_count, hom_enumerate, Const, Schema, Structure};
use std::collections::BTreeMap;
use std::fmt;

/// A bag (multiset) of answer tuples: each tuple of constants is mapped to its
/// multiplicity.  This is the `Φ(D)` of Section 2.1.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BagAnswers {
    counts: BTreeMap<Vec<Const>, Nat>,
}

impl BagAnswers {
    /// The empty bag.
    pub fn new() -> Self {
        BagAnswers::default()
    }

    /// Add `n` occurrences of a tuple.
    pub fn add(&mut self, tuple: Vec<Const>, n: Nat) {
        if n.is_zero() {
            return;
        }
        let entry = self.counts.entry(tuple).or_insert_with(Nat::zero);
        *entry += &n;
    }

    /// The multiplicity of a tuple (`0` if absent).
    pub fn multiplicity(&self, tuple: &[Const]) -> Nat {
        self.counts.get(tuple).cloned().unwrap_or_else(Nat::zero)
    }

    /// Number of distinct tuples.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total multiplicity over all tuples.
    pub fn total(&self) -> Nat {
        let mut acc = Nat::zero();
        for v in self.counts.values() {
            acc += v;
        }
        acc
    }

    /// Iterator over `(tuple, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Const>, &Nat)> {
        self.counts.iter()
    }

    /// The underlying *set* of tuples (set-semantics view of the same answer).
    pub fn support(&self) -> Vec<Vec<Const>> {
        self.counts.keys().cloned().collect()
    }

    /// Whether two bags are equal *as sets* (same support).
    pub fn set_equal(&self, other: &BagAnswers) -> bool {
        self.support() == other.support()
    }

    /// Multiset union (`∪` of Section 2.1: multiplicities add).
    pub fn union(&self, other: &BagAnswers) -> BagAnswers {
        let mut out = self.clone();
        for (t, n) in other.iter() {
            out.add(t.clone(), n.clone());
        }
        out
    }
}

impl fmt::Display for BagAnswers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, n)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}↦{n}")?;
        }
        write!(f, "}}")
    }
}

/// Evaluate a conjunctive query over a structure under **bag semantics**.
///
/// The multiplicity of an answer `a⃗` is the number of homomorphisms `h` of the
/// frozen body into `D` with `h(x⃗) = a⃗`.
pub fn eval_cq(query: &ConjunctiveQuery, schema: &Schema, d: &Structure) -> BagAnswers {
    let (body, mapping) = query.frozen_body_over(schema);
    let free_consts: Vec<Const> = query.free_vars().iter().map(|v| mapping[v]).collect();
    let mut out = BagAnswers::new();
    if query.is_boolean() {
        // Fast path: a boolean query only needs the homomorphism count.
        out.add(vec![], hom_count(&body, d));
        return out;
    }
    for h in hom_enumerate(&body, d) {
        let tuple: Vec<Const> = free_consts.iter().map(|c| h[c]).collect();
        out.add(tuple, Nat::one());
    }
    out
}

/// Evaluate a **boolean** conjunctive query: `q(D) = |hom(q, D)|`.
pub fn eval_boolean_cq(query: &ConjunctiveQuery, schema: &Schema, d: &Structure) -> Nat {
    assert!(
        query.is_boolean(),
        "eval_boolean_cq requires a boolean query"
    );
    let (body, _) = query.frozen_body_over(schema);
    hom_count(&body, d)
}

/// Evaluate a **boolean** union of conjunctive queries:
/// `Ψ(D) = Σ_{Φ ∈ Ψ} Φ(D)` (Section 2.1).
pub fn eval_boolean_ucq(query: &UnionQuery, schema: &Schema, d: &Structure) -> Nat {
    let mut acc = Nat::zero();
    for disjunct in query.disjuncts() {
        acc += &eval_boolean_cq(disjunct, schema, d);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Atom;
    use crate::ucq::UnionQuery;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars)
    }

    fn schema() -> Schema {
        Schema::with_relations([("R", 2), ("S", 2), ("P", 2)])
    }

    /// A small database:  R-edges form a path 1→2→3, S-edges 3→4, P marks (0,1).
    fn db() -> Structure {
        let mut d = Structure::new(schema());
        d.add("P", &[0, 1]);
        d.add("R", &[1, 2]);
        d.add("R", &[2, 3]);
        d.add("S", &[3, 4]);
        d
    }

    #[test]
    fn boolean_evaluation_counts_homs() {
        let q = ConjunctiveQuery::boolean("q", vec![atom("R", &["x", "y"])]);
        assert_eq!(eval_boolean_cq(&q, &schema(), &db()), Nat::from_u64(2));
        let q2 =
            ConjunctiveQuery::boolean("q2", vec![atom("R", &["x", "y"]), atom("R", &["y", "z"])]);
        assert_eq!(eval_boolean_cq(&q2, &schema(), &db()), Nat::one());
        // Boolean query evaluated via eval_cq gives a single empty tuple.
        let bag = eval_cq(&q, &schema(), &db());
        assert_eq!(bag.multiplicity(&[]), Nat::from_u64(2));
        assert_eq!(bag.distinct(), 1);
    }

    #[test]
    fn free_variable_multiplicities() {
        // v(x) :- R(x,y): answers 1 (via y=2) and 2 (via y=3).
        let v = ConjunctiveQuery::new("v", &["x"], vec![atom("R", &["x", "y"])]);
        let bag = eval_cq(&v, &schema(), &db());
        assert_eq!(bag.multiplicity(&[1]), Nat::one());
        assert_eq!(bag.multiplicity(&[2]), Nat::one());
        assert_eq!(bag.multiplicity(&[3]), Nat::zero());
        assert_eq!(bag.total(), Nat::from_u64(2));
    }

    #[test]
    fn example_2_of_the_paper() {
        // q(x) = ∃u,y,z P(u,x), R(x,y), S(y,z)
        // v1(x) = ∃u,y   P(u,x), R(x,y)
        // v2(x) = ∃y,z   R(x,y), S(y,z)
        // The paper: V = {v1, v2} determines q under set semantics but not bag.
        let q = ConjunctiveQuery::new(
            "q",
            &["x"],
            vec![
                atom("P", &["u", "x"]),
                atom("R", &["x", "y"]),
                atom("S", &["y", "z"]),
            ],
        );
        let v1 = ConjunctiveQuery::new(
            "v1",
            &["x"],
            vec![atom("P", &["u", "x"]), atom("R", &["x", "y"])],
        );
        let v2 = ConjunctiveQuery::new(
            "v2",
            &["x"],
            vec![atom("R", &["x", "y"]), atom("S", &["y", "z"])],
        );
        let sch = schema();

        // Build two structures agreeing on v1, v2 as bags but not on q.
        // D:  P(a,b), R(b,c), R(b,c'), S(c,d)
        let mut d = Structure::new(sch.clone());
        d.add("P", &[0, 1]);
        d.add("R", &[1, 2]);
        d.add("R", &[1, 3]);
        d.add("S", &[2, 4]);
        // D': P(a,b), P(a',b'), R(b,c), R(b',c'), S(c,d), S(c',d')  — rearranged
        // so that the joins line up differently.
        let mut d2 = Structure::new(sch.clone());
        d2.add("P", &[0, 1]);
        d2.add("R", &[1, 2]);
        d2.add("R", &[1, 3]);
        d2.add("S", &[2, 4]);
        d2.add("S", &[3, 5]);

        let q_d = eval_cq(&q, &sch, &d);
        let q_d2 = eval_cq(&q, &sch, &d2);
        // Sanity: q gives 1 answer tuple (b) with multiplicity 1 on D, and 2 on D'.
        assert_eq!(q_d.multiplicity(&[1]), Nat::one());
        assert_eq!(q_d2.multiplicity(&[1]), Nat::from_u64(2));
        // v1 agrees on both (bag-equal), v2 does not in this particular pair —
        // the full Example 2 counterexample is exercised in the integration
        // tests; here we only check the evaluator machinery.
        assert_eq!(eval_cq(&v1, &sch, &d), eval_cq(&v1, &sch, &d2));
        assert!(eval_cq(&v2, &sch, &d) != eval_cq(&v2, &sch, &d2));
    }

    #[test]
    fn ucq_evaluation_sums() {
        let a = ConjunctiveQuery::boolean("a", vec![atom("R", &["x", "y"])]);
        let b = ConjunctiveQuery::boolean("b", vec![atom("S", &["x", "y"])]);
        let u = UnionQuery::new("u", vec![a.clone(), b.clone()]);
        assert_eq!(eval_boolean_ucq(&u, &schema(), &db()), Nat::from_u64(3));
        // A UCQ with a repeated disjunct counts it twice (bag semantics!).
        let uu = UnionQuery::new("uu", vec![a.clone(), a.clone()]);
        assert_eq!(eval_boolean_ucq(&uu, &schema(), &db()), Nat::from_u64(4));
    }

    #[test]
    fn bag_answers_operations() {
        let mut b1 = BagAnswers::new();
        b1.add(vec![1], Nat::from_u64(2));
        b1.add(vec![2], Nat::one());
        let mut b2 = BagAnswers::new();
        b2.add(vec![1], Nat::one());
        let u = b1.union(&b2);
        assert_eq!(u.multiplicity(&[1]), Nat::from_u64(3));
        assert_eq!(u.total(), Nat::from_u64(4));
        assert_eq!(u.distinct(), 2);
        assert!(b1.set_equal(&u), "union does not change the support here");
        assert!(b1 != u, "but the bags differ");
        let mut b3 = BagAnswers::new();
        b3.add(vec![1], Nat::from_u64(7));
        b3.add(vec![2], Nat::from_u64(9));
        assert!(b1.set_equal(&b3));
        // Zero-multiplicity adds are ignored.
        let mut b4 = BagAnswers::new();
        b4.add(vec![5], Nat::zero());
        assert_eq!(b4.distinct(), 0);
    }
}
