//! A small Datalog-style parser for conjunctive queries and UCQs.
//!
//! Syntax:
//!
//! ```text
//! q(x)  :- P(u,x), R(x,y), S(y,z)        # a CQ with one free variable
//! q()   :- R(x,y), R(y,z)                # a boolean CQ
//! u()   :- R(x,y) | S(x,y)               # a boolean UCQ (disjuncts split on '|')
//! ```
//!
//! Variable and relation names are alphanumeric identifiers (plus `_` and `'`);
//! whitespace is insignificant; everything after `#` on a line is a comment.
//!
//! Errors are **positioned**: every [`ParseQueryError`] carries the
//! (1-based) line and column of the failure plus the offending token, so
//! front ends can render caret diagnostics against the source text
//! (`cqdet-service` does exactly that for the CLI and the JSON-lines
//! server).  Columns are measured in characters against the raw input line —
//! including any leading whitespace and trailing comment — so a caret at
//! `col` under the original line points at the problem.

use crate::cq::{Atom, ConjunctiveQuery};
use crate::ucq::UnionQuery;
use std::fmt;

/// Error raised when parsing a query fails, with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    /// 1-based line of the failure (always `1` for [`parse_query`]; real
    /// line numbers come from [`parse_queries`] / task-file parsing).
    line: usize,
    /// 1-based character column of the failure within the raw line.
    col: usize,
    /// The offending token (possibly empty at end of input).
    token: String,
    /// What the parser expected or found.
    message: String,
}

impl ParseQueryError {
    fn new(message: impl Into<String>, col: usize, token: impl Into<String>) -> Self {
        ParseQueryError {
            line: 1,
            col,
            token: token.into(),
            message: message.into(),
        }
    }

    /// The 1-based source line of the failure.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The 1-based character column of the failure.
    pub fn col(&self) -> usize {
        self.col
    }

    /// The offending token (empty when the input ended too early).
    pub fn token(&self) -> &str {
        &self.token
    }

    /// The bare description, without the position prefix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The same error re-anchored at a real source line (used by multi-line
    /// front ends; [`parse_query`] itself always reports line 1).
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = line;
        self
    }
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at line {}, column {}: {}",
            self.line, self.col, self.message
        )?;
        if !self.token.is_empty() {
            write!(f, " (found {:?})", self.token)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseQueryError {}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\''
}

/// The 1-based character column of the subslice `rest` within `input`.
/// `rest` must be derived from `input` by slicing/trimming (which is how the
/// parser below produces every intermediate), so the pointer offset is the
/// byte position and the column is the char count before it.
fn col_of(input: &str, rest: &str) -> usize {
    let offset = (rest.as_ptr() as usize).saturating_sub(input.as_ptr() as usize);
    let offset = offset.min(input.len());
    input[..offset].chars().count() + 1
}

/// The token starting at `rest`: a maximal identifier, or a single
/// non-identifier character, or empty at end of input.
fn head_token(rest: &str) -> &str {
    let rest = rest.trim_start();
    let mut chars = rest.char_indices();
    match chars.next() {
        None => "",
        Some((_, c)) if !is_ident_char(c) => &rest[..c.len_utf8()],
        Some(_) => {
            let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
            &rest[..end]
        }
    }
}

/// Split `R(x,y), S(y,z)` into atoms.  `input` is the raw line the body was
/// sliced from; every error is positioned against it.
fn parse_atoms(input: &str, body: &str) -> Result<Vec<Atom>, ParseQueryError> {
    let mut atoms = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        // relation name
        let name_end = rest.find(|c: char| !is_ident_char(c)).ok_or_else(|| {
            ParseQueryError::new(
                "expected '(' after relation name",
                col_of(input, rest) + rest.chars().count(),
                "",
            )
        })?;
        let name = &rest[..name_end];
        if name.is_empty() {
            return Err(ParseQueryError::new(
                "missing relation name",
                col_of(input, rest),
                head_token(rest),
            ));
        }
        rest = rest[name_end..].trim_start();
        if !rest.starts_with('(') {
            return Err(ParseQueryError::new(
                format!("expected '(' after relation {name}"),
                col_of(input, rest),
                head_token(rest),
            ));
        }
        let close = rest.find(')').ok_or_else(|| {
            ParseQueryError::new(
                format!("missing ')' in atom {name}"),
                col_of(input, rest),
                "(",
            )
        })?;
        let args_str = &rest[1..close];
        let vars: Vec<String> = if args_str.trim().is_empty() {
            Vec::new()
        } else {
            args_str.split(',').map(|v| v.trim().to_string()).collect()
        };
        for (i, v) in vars.iter().enumerate() {
            if v.is_empty() || !v.chars().all(is_ident_char) {
                // Point at the i-th argument inside the parentheses.
                let arg = args_str.split(',').nth(i).unwrap_or(args_str);
                let col = col_of(input, arg) + arg.len() - arg.trim_start().len();
                return Err(ParseQueryError::new(
                    format!("bad variable name {v:?} in atom {name}"),
                    col,
                    v.clone(),
                ));
            }
        }
        atoms.push(Atom {
            relation: name.to_string(),
            vars,
        });
        rest = rest[close + 1..].trim_start();
        if rest.starts_with(',') {
            let after_comma = rest[1..].trim_start();
            if after_comma.is_empty() {
                return Err(ParseQueryError::new(
                    "trailing ',' in query body",
                    col_of(input, rest),
                    ",",
                ));
            }
            rest = after_comma;
        } else if !rest.is_empty() {
            return Err(ParseQueryError::new(
                "unexpected input after atom",
                col_of(input, rest),
                head_token(rest),
            ));
        }
    }
    if atoms.is_empty() {
        return Err(ParseQueryError::new(
            "query body has no atoms",
            col_of(input, body),
            head_token(body),
        ));
    }
    Ok(atoms)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse a single query definition, e.g. `q(x) :- R(x,y), S(y,z)` or a UCQ
/// with `|`-separated disjuncts.  Every disjunct shares the head.
pub fn parse_query(input: &str) -> Result<UnionQuery, ParseQueryError> {
    let raw = input;
    let input_stripped = strip_comment(input).trim();
    let (head, body) = input_stripped.split_once(":-").ok_or_else(|| {
        ParseQueryError::new(
            "missing ':-' separator",
            col_of(raw, input_stripped),
            head_token(input_stripped),
        )
    })?;
    let head = head.trim();
    let open = head.find('(').ok_or_else(|| {
        ParseQueryError::new(
            "head must look like name(vars...)",
            col_of(raw, head),
            head_token(head),
        )
    })?;
    let close = head.rfind(')').ok_or_else(|| {
        ParseQueryError::new("head missing ')'", col_of(raw, head), head_token(head))
    })?;
    let name = head[..open].trim();
    if name.is_empty() || !name.chars().all(is_ident_char) {
        return Err(ParseQueryError::new(
            format!("bad query name {name:?}"),
            col_of(raw, head),
            name,
        ));
    }
    let free_str = &head[open + 1..close];
    let free: Vec<String> = if free_str.trim().is_empty() {
        Vec::new()
    } else {
        free_str.split(',').map(|v| v.trim().to_string()).collect()
    };
    let free_refs: Vec<&str> = free.iter().map(String::as_str).collect();

    let mut disjuncts = Vec::new();
    for (i, part) in body.split('|').enumerate() {
        let atoms = parse_atoms(raw, part)?;
        let disjunct_name = if body.contains('|') {
            format!("{name}#{i}")
        } else {
            name.to_string()
        };
        // Validate safety here so the error is a parse error, not a panic.
        let body_vars: std::collections::BTreeSet<&str> = atoms
            .iter()
            .flat_map(|a| a.vars.iter().map(String::as_str))
            .collect();
        for v in &free_refs {
            if !body_vars.contains(v) {
                return Err(ParseQueryError::new(
                    format!("free variable {v} does not occur in disjunct {i} of {name}"),
                    col_of(raw, free_str),
                    (*v).to_string(),
                ));
            }
        }
        disjuncts.push(ConjunctiveQuery::new(disjunct_name, &free_refs, atoms));
    }
    Ok(UnionQuery::new(name, disjuncts))
}

/// Parse a multi-line program: one query definition per (non-empty,
/// non-comment) line.  Errors carry the real (1-based) line number.
pub fn parse_queries(input: &str) -> Result<Vec<UnionQuery>, ParseQueryError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if strip_comment(line).trim().is_empty() {
            continue;
        }
        out.push(parse_query(line).map_err(|e| e.at_line(idx + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_cq() {
        let u = parse_query("q(x) :- P(u,x), R(x,y), S(y,z)").unwrap();
        assert!(u.is_single_cq());
        let cq = &u.disjuncts()[0];
        assert_eq!(cq.name(), "q");
        assert_eq!(cq.arity(), 1);
        assert_eq!(cq.atoms().len(), 3);
        assert_eq!(cq.to_string(), "q(x) :- P(u,x), R(x,y), S(y,z)");
    }

    #[test]
    fn parse_boolean_cq() {
        let u = parse_query("q() :- R(x,y), R(y,z)").unwrap();
        assert!(u.is_boolean());
        assert_eq!(u.disjuncts()[0].atoms().len(), 2);
    }

    #[test]
    fn parse_nullary_atom() {
        let u = parse_query("q() :- H()").unwrap();
        assert_eq!(u.disjuncts()[0].atoms()[0].vars.len(), 0);
    }

    #[test]
    fn parse_ucq() {
        let u = parse_query("u() :- P(x) | R(x), S(y)").unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.disjuncts()[0].atoms().len(), 1);
        assert_eq!(u.disjuncts()[1].atoms().len(), 2);
        assert!(u.is_boolean());
    }

    #[test]
    fn parse_program_with_comments() {
        let prog = "
            # views
            v1(x) :- P(u,x), R(x,y)
            v2(x) :- R(x,y), S(y,z)   # second view

            q(x) :- P(u,x), R(x,y), S(y,z)
        ";
        let qs = parse_queries(prog).unwrap();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[2].name(), "q");
    }

    #[test]
    fn errors() {
        assert!(parse_query("q(x) R(x,y)").is_err());
        assert!(parse_query("q(x) :- ").is_err());
        assert!(parse_query("q(x) :- R(x,y,").is_err());
        assert!(parse_query("(x) :- R(x,y)").is_err());
        assert!(
            parse_query("q(x) :- R(y,z)").is_err(),
            "unsafe head variable"
        );
        assert!(parse_query("q(x) :- R(x,y), ").is_err());
        assert!(parse_query("q(x) :- R(x,y) junk").is_err());
        let err = parse_query("q(x) :- R(x,y) junk").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn errors_carry_line_column_and_token() {
        // The offending `junk` starts at column 16 of the raw line.
        let err = parse_query("q(x) :- R(x,y) junk").unwrap_err();
        assert_eq!((err.line(), err.col()), (1, 16));
        assert_eq!(err.token(), "junk");
        assert!(err.to_string().contains("line 1, column 16"), "{err}");
        assert!(err.to_string().contains("\"junk\""), "{err}");

        // Multi-line programs report the real line; leading whitespace counts
        // toward the column (the caret is rendered against the raw line).
        let err = parse_queries("v() :- R(x,y)\n  q() : R(x,y)\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.col(), 3, "first non-blank char of the raw line");
        assert!(err.to_string().contains("':-'"), "{err}");

        // A bad variable name points inside the parentheses.
        let err = parse_query("q() :- R(x,y?)").unwrap_err();
        assert_eq!(err.col(), 12);
        assert_eq!(err.token(), "y?");

        // Missing '(' after a relation name names the relation.
        let err = parse_query("q() :- R x,y)").unwrap_err();
        assert!(err.message().contains("after relation R"), "{err}");
        assert_eq!(err.col(), 10);
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_query("q( x )  :-  R( x , y ),S(y,z)").unwrap();
        let b = parse_query("q(x) :- R(x,y), S(y,z)").unwrap();
        assert_eq!(a.disjuncts()[0].atoms(), b.disjuncts()[0].atoms());
    }
}
