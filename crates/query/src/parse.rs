//! A small Datalog-style parser for conjunctive queries and UCQs.
//!
//! Syntax:
//!
//! ```text
//! q(x)  :- P(u,x), R(x,y), S(y,z)        # a CQ with one free variable
//! q()   :- R(x,y), R(y,z)                # a boolean CQ
//! u()   :- R(x,y) | S(x,y)               # a boolean UCQ (disjuncts split on '|')
//! ```
//!
//! Variable and relation names are alphanumeric identifiers (plus `_` and `'`);
//! whitespace is insignificant; everything after `#` on a line is a comment.

use crate::cq::{Atom, ConjunctiveQuery};
use crate::ucq::UnionQuery;
use std::fmt;

/// Error raised when parsing a query fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    message: String,
}

impl ParseQueryError {
    fn new(message: impl Into<String>) -> Self {
        ParseQueryError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseQueryError {}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\''
}

/// Split `R(x,y), S(y,z)` into atoms.
fn parse_atoms(body: &str) -> Result<Vec<Atom>, ParseQueryError> {
    let mut atoms = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        // relation name
        let name_end = rest.find(|c: char| !is_ident_char(c)).ok_or_else(|| {
            ParseQueryError::new(format!("expected '(' after relation name in {rest:?}"))
        })?;
        let name = &rest[..name_end];
        if name.is_empty() {
            return Err(ParseQueryError::new(format!(
                "missing relation name at {rest:?}"
            )));
        }
        rest = rest[name_end..].trim_start();
        if !rest.starts_with('(') {
            return Err(ParseQueryError::new(format!("expected '(' after {name}")));
        }
        let close = rest
            .find(')')
            .ok_or_else(|| ParseQueryError::new(format!("missing ')' in atom {name}")))?;
        let args_str = &rest[1..close];
        let vars: Vec<String> = if args_str.trim().is_empty() {
            Vec::new()
        } else {
            args_str.split(',').map(|v| v.trim().to_string()).collect()
        };
        for v in &vars {
            if v.is_empty() || !v.chars().all(is_ident_char) {
                return Err(ParseQueryError::new(format!(
                    "bad variable name {v:?} in atom {name}"
                )));
            }
        }
        atoms.push(Atom {
            relation: name.to_string(),
            vars,
        });
        rest = rest[close + 1..].trim_start();
        if rest.starts_with(',') {
            rest = rest[1..].trim_start();
            if rest.is_empty() {
                return Err(ParseQueryError::new("trailing ',' in query body"));
            }
        } else if !rest.is_empty() {
            return Err(ParseQueryError::new(format!(
                "unexpected input {rest:?} after atom"
            )));
        }
    }
    if atoms.is_empty() {
        return Err(ParseQueryError::new("query body has no atoms"));
    }
    Ok(atoms)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse a single query definition, e.g. `q(x) :- R(x,y), S(y,z)` or a UCQ
/// with `|`-separated disjuncts.  Every disjunct shares the head.
pub fn parse_query(input: &str) -> Result<UnionQuery, ParseQueryError> {
    let input = strip_comment(input).trim();
    let (head, body) = input
        .split_once(":-")
        .ok_or_else(|| ParseQueryError::new("missing ':-' separator"))?;
    let head = head.trim();
    let open = head
        .find('(')
        .ok_or_else(|| ParseQueryError::new("head must look like name(vars...)"))?;
    let close = head
        .rfind(')')
        .ok_or_else(|| ParseQueryError::new("head missing ')'"))?;
    let name = head[..open].trim();
    if name.is_empty() || !name.chars().all(is_ident_char) {
        return Err(ParseQueryError::new(format!("bad query name {name:?}")));
    }
    let free_str = &head[open + 1..close];
    let free: Vec<String> = if free_str.trim().is_empty() {
        Vec::new()
    } else {
        free_str.split(',').map(|v| v.trim().to_string()).collect()
    };
    let free_refs: Vec<&str> = free.iter().map(String::as_str).collect();

    let mut disjuncts = Vec::new();
    for (i, part) in body.split('|').enumerate() {
        let atoms = parse_atoms(part)?;
        let disjunct_name = if body.contains('|') {
            format!("{name}#{i}")
        } else {
            name.to_string()
        };
        // Validate safety here so the error is a parse error, not a panic.
        let body_vars: std::collections::BTreeSet<&str> = atoms
            .iter()
            .flat_map(|a| a.vars.iter().map(String::as_str))
            .collect();
        for v in &free_refs {
            if !body_vars.contains(v) {
                return Err(ParseQueryError::new(format!(
                    "free variable {v} does not occur in disjunct {i} of {name}"
                )));
            }
        }
        disjuncts.push(ConjunctiveQuery::new(disjunct_name, &free_refs, atoms));
    }
    Ok(UnionQuery::new(name, disjuncts))
}

/// Parse a multi-line program: one query definition per (non-empty,
/// non-comment) line.
pub fn parse_queries(input: &str) -> Result<Vec<UnionQuery>, ParseQueryError> {
    let mut out = Vec::new();
    for line in input.lines() {
        let line = strip_comment(line).trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_query(line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_cq() {
        let u = parse_query("q(x) :- P(u,x), R(x,y), S(y,z)").unwrap();
        assert!(u.is_single_cq());
        let cq = &u.disjuncts()[0];
        assert_eq!(cq.name(), "q");
        assert_eq!(cq.arity(), 1);
        assert_eq!(cq.atoms().len(), 3);
        assert_eq!(cq.to_string(), "q(x) :- P(u,x), R(x,y), S(y,z)");
    }

    #[test]
    fn parse_boolean_cq() {
        let u = parse_query("q() :- R(x,y), R(y,z)").unwrap();
        assert!(u.is_boolean());
        assert_eq!(u.disjuncts()[0].atoms().len(), 2);
    }

    #[test]
    fn parse_nullary_atom() {
        let u = parse_query("q() :- H()").unwrap();
        assert_eq!(u.disjuncts()[0].atoms()[0].vars.len(), 0);
    }

    #[test]
    fn parse_ucq() {
        let u = parse_query("u() :- P(x) | R(x), S(y)").unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.disjuncts()[0].atoms().len(), 1);
        assert_eq!(u.disjuncts()[1].atoms().len(), 2);
        assert!(u.is_boolean());
    }

    #[test]
    fn parse_program_with_comments() {
        let prog = "
            # views
            v1(x) :- P(u,x), R(x,y)
            v2(x) :- R(x,y), S(y,z)   # second view

            q(x) :- P(u,x), R(x,y), S(y,z)
        ";
        let qs = parse_queries(prog).unwrap();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[2].name(), "q");
    }

    #[test]
    fn errors() {
        assert!(parse_query("q(x) R(x,y)").is_err());
        assert!(parse_query("q(x) :- ").is_err());
        assert!(parse_query("q(x) :- R(x,y,").is_err());
        assert!(parse_query("(x) :- R(x,y)").is_err());
        assert!(
            parse_query("q(x) :- R(y,z)").is_err(),
            "unsafe head variable"
        );
        assert!(parse_query("q(x) :- R(x,y), ").is_err());
        assert!(parse_query("q(x) :- R(x,y) junk").is_err());
        let err = parse_query("q(x) :- R(x,y) junk").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_query("q( x )  :-  R( x , y ),S(y,z)").unwrap();
        let b = parse_query("q(x) :- R(x,y), S(y,z)").unwrap();
        assert_eq!(a.disjuncts()[0].atoms(), b.disjuncts()[0].atoms());
    }
}
