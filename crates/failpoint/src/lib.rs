//! Dependency-free fault-injection failpoints, in the spirit of the `fail`
//! crate.
//!
//! A failpoint is a named seam in request-handling code where a test (or an
//! operator, via the `CQDET_FAILPOINTS` environment variable) can inject a
//! panic, a delay, or a typed error.  The [`fail_point!`] macro compiles to
//! **nothing** unless the consuming crate enables its `failpoints` feature
//! (each consumer forwards one to `cqdet-failpoint/failpoints`), so
//! production builds carry zero cost and zero behaviour change.
//!
//! With the feature enabled, actions come from two sources:
//!
//! * the environment: `CQDET_FAILPOINTS=serve/parse=panic,decide/span=delay:50`
//!   (comma- or semicolon-separated `name=action` pairs, parsed once at first
//!   use);
//! * the programmatic API: [`configure`] / [`clear`] / [`clear_all`], which
//!   the chaos harness uses to cycle faults through every seam.
//!
//! Actions: `panic` (aborts the request; containment layers must convert it
//! to a typed error), `delay:<ms>` (sleeps, for slow-path and timeout
//! testing), `err` or `err:<message>` (returned to error-capable seams —
//! the two-argument macro form — and ignored by unit seams), `off` (a
//! registered no-op, useful to assert a seam is reached via [`hits`]).
//!
//! ```
//! use cqdet_failpoint::fail_point;
//!
//! fn read_frame() -> Result<Vec<u8>, String> {
//!     // Error-capable seam: an `err` action returns early with the payload.
//!     fail_point!("doc/read", |msg: String| Err(msg));
//!     // Unit seam: `panic`/`delay` actions apply, `err` is ignored.
//!     fail_point!("doc/decode");
//!     Ok(vec![])
//! }
//! assert_eq!(read_frame(), Ok(vec![]));
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed failpoint does when its seam is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic with a message naming the failpoint.
    Panic,
    /// Sleep for the given duration, then continue.
    Delay(Duration),
    /// Hand the payload to an error-capable seam (two-argument
    /// [`fail_point!`]); ignored by unit seams.
    Err(String),
    /// Do nothing, but count the hit (see [`hits`]).
    Off,
}

impl Action {
    /// Parse an action spec: `panic`, `delay:<ms>`, `err`, `err:<message>`,
    /// `off`.
    pub fn parse(spec: &str) -> Result<Action, String> {
        let (head, rest) = match spec.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (spec, None),
        };
        match (head, rest) {
            ("panic", None) => Ok(Action::Panic),
            ("off", None) => Ok(Action::Off),
            ("err", None) => Ok(Action::Err("injected failpoint error".to_string())),
            ("err", Some(msg)) => Ok(Action::Err(msg.to_string())),
            ("delay", Some(ms)) => ms
                .parse::<u64>()
                .map(|ms| Action::Delay(Duration::from_millis(ms)))
                .map_err(|_| format!("bad delay milliseconds in failpoint spec {spec:?}")),
            _ => Err(format!("unknown failpoint action {spec:?}")),
        }
    }
}

#[derive(Debug, Default)]
struct Registry {
    /// Armed points: name → (action, hit count).
    armed: HashMap<String, (Action, u64)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut reg = Registry::default();
        if let Ok(spec) = std::env::var("CQDET_FAILPOINTS") {
            for pair in spec.split([',', ';']).filter(|s| !s.trim().is_empty()) {
                if let Some((name, action)) = pair.split_once('=') {
                    if let Ok(action) = Action::parse(action.trim()) {
                        reg.armed.insert(name.trim().to_string(), (action, 0));
                    }
                }
            }
        }
        Mutex::new(reg)
    })
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm `name` with `action` (replacing any previous arming).
pub fn configure(name: &str, action: Action) {
    lock().armed.insert(name.to_string(), (action, 0));
}

/// Disarm `name`.
pub fn clear(name: &str) {
    lock().armed.remove(name);
}

/// Disarm every failpoint.
pub fn clear_all() {
    lock().armed.clear();
}

/// How many times the armed point `name` has been reached since it was
/// configured (0 for unarmed points — unarmed seams are not tracked).
pub fn hits(name: &str) -> u64 {
    lock().armed.get(name).map_or(0, |(_, n)| *n)
}

/// Record a hit on `name` and return the action to apply, if armed.
fn trigger(name: &str) -> Option<Action> {
    let mut reg = lock();
    let (action, count) = reg.armed.get_mut(name)?;
    *count += 1;
    Some(action.clone())
}

/// Evaluate a unit seam (used by the one-argument [`fail_point!`]):
/// applies `panic` and `delay` actions; `err` and `off` fall through.
///
/// Not meant to be called directly — the macro keeps call sites no-op-able.
pub fn eval(name: &str) {
    match trigger(name) {
        Some(Action::Panic) => panic!("failpoint {name:?} panic"),
        Some(Action::Delay(d)) => std::thread::sleep(d),
        Some(Action::Err(_)) | Some(Action::Off) | None => {}
    }
}

/// Evaluate an error-capable seam (used by the two-argument
/// [`fail_point!`]): applies `panic` and `delay`, and returns the payload of
/// an `err` action for the seam to convert into its typed error.
pub fn eval_err(name: &str) -> Option<String> {
    match trigger(name) {
        Some(Action::Panic) => panic!("failpoint {name:?} panic"),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            None
        }
        Some(Action::Err(msg)) => Some(msg),
        Some(Action::Off) | None => None,
    }
}

/// Mark a named fault-injection seam.
///
/// * `fail_point!("name")` — unit seam: an armed `panic` panics, `delay`
///   sleeps, `err`/`off` do nothing.
/// * `fail_point!("name", |msg: String| expr)` — error-capable seam: an
///   armed `err` action makes the enclosing function `return expr` with the
///   action's message; `panic`/`delay` behave as above.
///
/// Compiles to an empty block unless the **consuming** crate has a
/// `failpoints` feature enabled (forwarding to `cqdet-failpoint/failpoints`).
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        $crate::eval($name);
    }};
    ($name:expr, $handler:expr) => {{
        #[cfg(feature = "failpoints")]
        {
            if let Some(__msg) = $crate::eval_err($name) {
                return ($handler)(__msg);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests share it; each uses its own
    // point names to stay independent under the parallel test runner.

    #[test]
    fn action_parsing() {
        assert_eq!(Action::parse("panic"), Ok(Action::Panic));
        assert_eq!(Action::parse("off"), Ok(Action::Off));
        assert_eq!(
            Action::parse("delay:250"),
            Ok(Action::Delay(Duration::from_millis(250)))
        );
        assert_eq!(Action::parse("err:boom"), Ok(Action::Err("boom".into())));
        assert!(Action::parse("err").is_ok());
        assert!(Action::parse("delay:xx").is_err());
        assert!(Action::parse("nonsense").is_err());
    }

    #[test]
    fn unarmed_points_do_nothing() {
        eval("t/unarmed");
        assert_eq!(eval_err("t/unarmed"), None);
        assert_eq!(hits("t/unarmed"), 0);
    }

    #[test]
    fn armed_err_and_hit_counting() {
        configure("t/err", Action::Err("injected".into()));
        assert_eq!(eval_err("t/err"), Some("injected".into()));
        // A unit seam ignores `err` but still counts the hit.
        eval("t/err");
        assert_eq!(hits("t/err"), 2);
        clear("t/err");
        assert_eq!(eval_err("t/err"), None);
    }

    #[test]
    fn delay_sleeps() {
        configure("t/delay", Action::Delay(Duration::from_millis(20)));
        let start = std::time::Instant::now();
        eval("t/delay");
        assert!(start.elapsed() >= Duration::from_millis(20));
        clear("t/delay");
    }

    #[test]
    fn panic_action_panics() {
        configure("t/panic", Action::Panic);
        let caught = std::panic::catch_unwind(|| eval("t/panic"));
        clear("t/panic");
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("t/panic"), "{msg}");
    }
}
