//! Stage-by-stage timing of the decision procedure on the many-views
//! workload (development aid for the DEDUP experiment; not a tracked bench).

use cqdet_bench::decide_workload;
use cqdet_core::decide_bag_determinacy;
use cqdet_linalg::{span_coefficients, span_contains, QVec, Rat};
use cqdet_query::cq::common_schema;
use cqdet_query::ConjunctiveQuery;
use cqdet_structure::{connected_components, dedup_up_to_iso, hom_exists, multiplicities};
use std::time::Instant;

fn main() {
    let views_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let (views, query) = decide_workload(views_n, 3, true, 0xD15C + views_n as u64);

    let t0 = Instant::now();
    let all: Vec<&ConjunctiveQuery> = views.iter().chain(std::iter::once(&query)).collect();
    let schema = common_schema(&all);
    let (q_body, _) = query.frozen_body_over(&schema);
    let view_bodies: Vec<_> = views
        .iter()
        .map(|v| v.frozen_body_over(&schema).0)
        .collect();
    println!("freeze          {:>10.2?}", t0.elapsed());

    let t = Instant::now();
    let retained: Vec<usize> = (0..views.len())
        .filter(|&i| hom_exists(&view_bodies[i], &q_body))
        .collect();
    println!(
        "gate            {:>10.2?} ({} retained)",
        t.elapsed(),
        retained.len()
    );

    let t = Instant::now();
    let mut comps: Vec<Vec<_>> = retained
        .iter()
        .map(|&i| connected_components(&view_bodies[i]))
        .collect();
    comps.push(connected_components(&q_body));
    let n_comps: usize = comps.iter().map(Vec::len).sum();
    println!("components      {:>10.2?} ({n_comps} comps)", t.elapsed());

    let t = Instant::now();
    let basis = dedup_up_to_iso(comps.iter().flatten().cloned().collect());
    println!(
        "dedup           {:>10.2?} (basis {})",
        t.elapsed(),
        basis.len()
    );

    let t = Instant::now();
    let vectors: Vec<_> = comps.iter().map(|c| multiplicities(&basis, c)).collect();
    println!("vectors         {:>10.2?} ({})", t.elapsed(), vectors.len());

    let to_qvec = |m: &Vec<u64>| QVec(m.iter().map(|&x| Rat::from_i64(x as i64)).collect());
    let qvecs: Vec<QVec> = vectors
        .iter()
        .map(|v| to_qvec(v.as_ref().unwrap()))
        .collect();
    let (view_vecs, q_vec) = (&qvecs[..qvecs.len() - 1], &qvecs[qvecs.len() - 1]);
    let t = Instant::now();
    let inside = span_contains(view_vecs, q_vec);
    println!("span_contains   {:>10.2?} ({inside})", t.elapsed());
    let t = Instant::now();
    let coeffs = span_coefficients(view_vecs, q_vec);
    println!(
        "span_coeffs     {:>10.2?} ({})",
        t.elapsed(),
        coeffs.is_some()
    );

    let t = Instant::now();
    let res = decide_bag_determinacy(&views, &query).unwrap();
    println!(
        "full pipeline   {:>10.2?} (determined={})",
        t.elapsed(),
        res.determined
    );
}
