//! Experiment HILBERT: the Theorem 2 reduction — encoding size and time as the
//! Diophantine instance grows, and the cost of the bounded refutation search.

use cqdet_hilbert::{encode, structures::bounded_refutation, DiophantineInstance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// `x₁·y₁ + x₂·y₂ + … + x_n·y_n − target = 0`.
fn sum_of_products(n: usize, target: i64) -> DiophantineInstance {
    let mut monomials = Vec::new();
    for i in 0..n {
        monomials.push(cqdet_hilbert::Monomial::new(
            1,
            &[(&format!("x{i}"), 1), (&format!("y{i}"), 1)],
        ));
    }
    monomials.push(cqdet_hilbert::Monomial::constant(-target));
    DiophantineInstance::new(monomials)
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("hilbert/encode");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for n in [1usize, 2, 4, 8] {
        let inst = sum_of_products(n, 12);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| encode(inst).total_disjuncts())
        });
    }
    group.finish();
}

fn bench_refutation_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("hilbert/bounded-refutation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for bound in [3u64, 6] {
        let inst = sum_of_products(2, 12);
        group.bench_with_input(
            BenchmarkId::from_parameter(bound),
            &(inst, bound),
            |b, (inst, bound)| b.iter(|| bounded_refutation(inst, *bound).is_some()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_refutation_search);
criterion_main!(benches);
