//! Experiment T3-WITNESS: cost of constructing and checking the certified
//! counterexample of Sections 5–7 for undetermined instances of growing
//! basis size k.

use cqdet_core::witness::{build_counterexample, WitnessConfig};
use cqdet_core::{decide_bag_determinacy, ConjunctiveQuery};
use cqdet_query::cq::Atom;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// An undetermined instance with k+1 basis components: the query is an
/// (k+1)-edge R-path, the views are the R-paths of lengths 1..=k.
fn chain_instance(k: usize) -> (Vec<ConjunctiveQuery>, ConjunctiveQuery) {
    let path = |name: &str, len: usize| {
        let atoms: Vec<Atom> = (0..len)
            .map(|i| Atom {
                relation: "R".to_string(),
                vars: vec![format!("x{i}"), format!("x{}", i + 1)],
            })
            .collect();
        ConjunctiveQuery::boolean(name, atoms)
    };
    let views: Vec<ConjunctiveQuery> = (1..=k).map(|l| path(&format!("v{l}"), l)).collect();
    let q = path("q", k + 1);
    (views, q)
}

fn bench_witness_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness/construct");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for k in [1usize, 2, 3] {
        let (views, q) = chain_instance(k);
        let analysis = decide_bag_determinacy(&views, &q).unwrap();
        assert!(!analysis.determined);
        group.bench_with_input(
            BenchmarkId::from_parameter(k + 1),
            &(analysis, q),
            |b, (a, q)| b.iter(|| build_counterexample(a, q, &WitnessConfig::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_witness_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness/verify");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for k in [1usize, 2, 3] {
        let (views, q) = chain_instance(k);
        let analysis = decide_bag_determinacy(&views, &q).unwrap();
        let witness = build_counterexample(&analysis, &q, &WitnessConfig::default()).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(k + 1),
            &(witness, views, q),
            |b, (w, v, q)| b.iter(|| w.verify(v, q)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_witness_construction,
    bench_witness_verification
);
criterion_main!(benches);
