//! Experiment T3-DECIDE: scaling of the Theorem 3 decision procedure with the
//! number of views and the size of each view, on random boolean-CQ workloads.
//!
//! Reported series: decision time for planted-determined instances and for
//! independent (usually undetermined) instances.  The paper proves the
//! procedure terminates; this experiment supplies the performance profile a
//! systems reader would expect (see EXPERIMENTS.md §T3-DECIDE).

use cqdet_bench::{
    decide_workload, dedup_components_workload, DECIDE_ATOM_COUNTS, DECIDE_MANY_VIEW_COUNTS,
    DECIDE_VIEW_COUNTS,
};
use cqdet_core::decide_bag_determinacy;
use cqdet_structure::dedup_up_to_iso;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_views_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide/views");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &views in DECIDE_VIEW_COUNTS {
        for planted in [true, false] {
            let (v, q) = decide_workload(views, 3, planted, 0xC0DE + views as u64);
            let label = if planted { "planted" } else { "independent" };
            group.bench_with_input(BenchmarkId::new(label, views), &(v, q), |b, (v, q)| {
                b.iter(|| decide_bag_determinacy(v, q).unwrap().determined)
            });
        }
    }
    group.finish();
}

fn bench_atoms_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide/atoms-per-view");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &atoms in DECIDE_ATOM_COUNTS {
        let (v, q) = decide_workload(4, atoms, true, 0xA70 + atoms as u64);
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &(v, q), |b, (v, q)| {
            b.iter(|| decide_bag_determinacy(v, q).unwrap().determined)
        });
    }
    group.finish();
}

fn bench_many_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide/many-views");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &views in DECIDE_MANY_VIEW_COUNTS {
        let (v, q) = decide_workload(views, 3, true, 0xD15C + views as u64);
        group.bench_with_input(BenchmarkId::from_parameter(views), &(v, q), |b, (v, q)| {
            b.iter(|| decide_bag_determinacy(v, q).unwrap().determined)
        });
    }
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup/components");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &views in DECIDE_MANY_VIEW_COUNTS {
        let comps = dedup_components_workload(views, 0xD15C + views as u64);
        group.bench_with_input(BenchmarkId::from_parameter(views), &comps, |b, comps| {
            // Rebuild fresh (uncached) structures per iteration; a clone
            // would reuse the canonical keys cached in the first iteration.
            b.iter(|| {
                let fresh: Vec<_> = comps.iter().map(|s| s.map_constants(|c| c)).collect();
                dedup_up_to_iso(fresh).len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_views_sweep,
    bench_atoms_sweep,
    bench_many_views,
    bench_dedup
);
criterion_main!(benches);
