//! Experiment T3-SPAN: the exact rational linear-algebra kernel behind the
//! Main Lemma — span-membership tests and matrix inversion over ℚ as the
//! dimension k (the number of basis components) grows.

use cqdet_bench::{span_workload, span_workload_seed, LINALG_SPAN_SHAPES, SPAN_DIMENSIONS};
use cqdet_linalg::{span_coefficients, span_contains, QMat, QVec, Rat};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// A deterministic pseudo-random small integer.
fn value(i: usize, j: usize) -> i64 {
    (((i * 31 + j * 17 + 7) % 11) as i64) - 3
}

fn vectors(k: usize, count: usize) -> Vec<QVec> {
    (0..count)
        .map(|c| QVec::from_i64s(&(0..k).map(|i| value(i, c)).collect::<Vec<_>>()))
        .collect()
}

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/span-membership");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &k in SPAN_DIMENSIONS {
        let vs = vectors(k, k / 2 + 1);
        // An in-span target (sum of the generators) and an out-of-span target.
        let mut target = QVec::zeros(k);
        for v in &vs {
            target = &target + v;
        }
        group.bench_with_input(
            BenchmarkId::new("in-span", k),
            &(vs.clone(), target),
            |b, (vs, t)| b.iter(|| span_contains(vs, t)),
        );
        let outside = QVec::from_i64s(&(0..k).map(|i| value(i, 997) + 1).collect::<Vec<_>>());
        group.bench_with_input(
            BenchmarkId::new("probe", k),
            &(vs, outside),
            |b, (vs, t)| b.iter(|| span_contains(vs, t)),
        );
    }
    group.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/inverse");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &k in SPAN_DIMENSIONS {
        // A nonsingular matrix: Vandermonde on distinct points.
        let points: Vec<Rat> = (0..k).map(|i| Rat::from_i64(i as i64 + 2)).collect();
        let m = QMat::vandermonde(&points);
        group.bench_with_input(BenchmarkId::from_parameter(k), &m, |b, m| {
            b.iter(|| m.inverse().is_some())
        });
    }
    group.finish();
}

/// The modular-prescreened span/rank kernels on tall bignum systems (the
/// LINALG experiment; the JSON-tracked twin lives in the `cqdet-bench`
/// harness).  `CQDET_EXACT_LINALG=1` turns both into the pure-Rat baseline.
fn bench_big_entry_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/span-bignum");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &(k, n, bits) in LINALG_SPAN_SHAPES {
        let (generators, inside, outside) = span_workload(k, n, bits, span_workload_seed(bits));
        group.bench_with_input(
            BenchmarkId::new("in-span", format!("{k}x{n}-{bits}bit")),
            &(generators.clone(), inside),
            |b, (vs, t)| b.iter(|| span_coefficients(vs, t).is_some()),
        );
        group.bench_with_input(
            BenchmarkId::new("out-of-span", format!("{k}x{n}-{bits}bit")),
            &(generators.clone(), outside),
            |b, (vs, t)| b.iter(|| span_coefficients(vs, t).is_some()),
        );
        let m = QMat::from_cols(&generators);
        group.bench_with_input(
            BenchmarkId::new("rank", format!("{k}x{n}-{bits}bit")),
            &m,
            |b, m| b.iter(|| m.rank()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_span, bench_inverse, bench_big_entry_span);
criterion_main!(benches);
