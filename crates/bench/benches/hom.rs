//! Experiment HOM: homomorphism counting — naive backtracking vs. the
//! connected-component factorisation of Lemma 4(5), as the target structure
//! grows.  This is the ablation for the single most used primitive of the
//! decision procedure.

use cqdet_bench::{hom_source, hom_target, HOM_DOMAIN_SIZES};
use cqdet_structure::{hom_count, hom_count_factored};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_hom_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom/count");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let source = hom_source();
    for &n in HOM_DOMAIN_SIZES {
        let target = hom_target(n, 3 * n, 0xBEEF + n as u64);
        group.bench_with_input(BenchmarkId::new("naive", n), &target, |b, t| {
            b.iter(|| hom_count(&source, t))
        });
        group.bench_with_input(
            BenchmarkId::new("factored(Lemma4.5)", n),
            &target,
            |b, t| b.iter(|| hom_count_factored(&source, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hom_counting);
criterion_main!(benches);
