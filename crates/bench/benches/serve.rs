//! Experiment SERVE: protocol overhead of the JSON-lines server loop.
//!
//! The serving workload measured (a) through the direct in-process
//! certificate path — task-file parse + a fresh
//! `DecisionSession::decide_batch` + every record rendered to JSON, exactly
//! what `cqdet batch` does — and (b) through the full server path: request
//! JSON parse, task-file parse, dispatch via `Engine::submit`, response
//! envelope render.  Both sides emit full certificates, so the difference
//! is exactly the protocol framing a `cqdet serve` client pays over
//! linking the library; the acceptance gate is protocol/direct < 1.10.
//! Recorded runs live in EXPERIMENTS.md §SERVE.

use cqdet_bench::{serve_request_line, serve_workload, tasks_to_taskfile, SERVE_TASK_COUNTS};
use cqdet_engine::{DecisionSession, SessionConfig};
use cqdet_service::{respond_to_line, Engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &num_tasks in SERVE_TASK_COUNTS {
        let tasks = serve_workload(num_tasks, 0x5E4E + num_tasks as u64);
        let line = serve_request_line(&tasks);
        let text = tasks_to_taskfile(&tasks);
        group.bench_with_input(BenchmarkId::new("direct", num_tasks), &text, |b, text| {
            b.iter(|| {
                let file = cqdet_engine::parse_task_file(text).expect("task file");
                let session = DecisionSession::with_config(SessionConfig {
                    witnesses: false,
                    verify: false,
                    ..Default::default()
                });
                let report = session.decide_batch(&file.tasks);
                let mut bytes = 0usize;
                for record in &report.records {
                    bytes += record.to_json().render().len();
                }
                bytes + cqdet_engine::stats_json(&report.stats).render().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("protocol", num_tasks), &line, |b, line| {
            b.iter(|| {
                let engine = Engine::new();
                let response = respond_to_line(&engine, line).expect("request");
                response.to_json().render().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
