//! Experiment BASELINE: the Theorem 3 decision procedure vs. the bounded
//! brute-force baseline on the same small instances.  The headline comparison
//! of the reproduction: the exact procedure answers in microseconds–
//! milliseconds regardless of the (unbounded!) structure space, while the
//! baseline explodes with the domain bound and can never confirm determinacy.

use cqdet_core::{brute_force_search, decide_bag_determinacy, ConjunctiveQuery};
use cqdet_query::cq::Atom;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn edge(name: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::boolean(name, vec![Atom::new("R", &["x", "y"])])
}

fn two_path(name: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::boolean(
        name,
        vec![Atom::new("R", &["x", "y"]), Atom::new("R", &["y", "z"])],
    )
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/edge-vs-2path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let q = two_path("q");
    let v = edge("v");
    group.bench_function("theorem3-decide", |b| {
        b.iter(|| {
            decide_bag_determinacy(std::slice::from_ref(&v), &q)
                .unwrap()
                .determined
        })
    });
    for max_domain in [2usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("bruteforce", max_domain),
            &max_domain,
            |b, &d| {
                b.iter(|| brute_force_search(std::slice::from_ref(&v), &q, d, 100_000).refuted())
            },
        );
    }
    group.finish();
}

fn bench_baseline_determined(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/determined-instance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    // q = 2 disjoint edges = 2·v — determined; the baseline must scan
    // everything and still cannot conclude.
    let q = ConjunctiveQuery::boolean(
        "q",
        vec![Atom::new("R", &["x", "y"]), Atom::new("R", &["z", "w"])],
    );
    let v = edge("v");
    group.bench_function("theorem3-decide", |b| {
        b.iter(|| {
            decide_bag_determinacy(std::slice::from_ref(&v), &q)
                .unwrap()
                .determined
        })
    });
    group.bench_function("bruteforce(domain<=2)", |b| {
        b.iter(|| brute_force_search(std::slice::from_ref(&v), &q, 2, 100_000).refuted())
    });
    group.finish();
}

criterion_group!(benches, bench_baseline, bench_baseline_determined);
criterion_main!(benches);
