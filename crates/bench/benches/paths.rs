//! Experiment PATH: path-query determinacy (Theorem 1) and path-query
//! evaluation.
//!
//! * decision: prefix-graph reachability vs. the bounded brute-force baseline;
//! * evaluation: incidence-matrix evaluation (Fact 18) vs. naive homomorphism
//!   enumeration.

use cqdet_bench::{hom_target, path_workload, PATH_QUERY_LENGTHS};
use cqdet_core::paths::eval_path_matrix;
use cqdet_core::{brute_force_search, decide_path_determinacy};
use cqdet_query::eval::eval_cq;
use cqdet_query::PathQuery;
use cqdet_structure::Schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths/decide");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &len in PATH_QUERY_LENGTHS {
        for derivable in [true, false] {
            let (views, q) = path_workload(len, 4, derivable, 0x9A7 + len as u64);
            let label = if derivable { "determined" } else { "random" };
            group.bench_with_input(BenchmarkId::new(label, len), &(views, q), |b, (v, q)| {
                b.iter(|| decide_path_determinacy(v, q).determined)
            });
        }
    }
    group.finish();
}

fn bench_decision_vs_bruteforce(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths/decide-vs-bruteforce");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    // Small instance where the brute-force baseline is still feasible.
    let (views, q) = path_workload(3, 2, false, 0xF00D);
    let view_cqs: Vec<_> = views.iter().map(|v| v.to_cq("v").clone()).collect();
    let boolean_views: Vec<_> = view_cqs
        .iter()
        .map(|v| cqdet_query::ConjunctiveQuery::boolean(v.name(), v.atoms().to_vec()))
        .collect();
    let q_cq = cqdet_query::ConjunctiveQuery::boolean("q", q.to_cq("q").atoms().to_vec());
    group.bench_function("prefix-graph", |b| {
        b.iter(|| decide_path_determinacy(&views, &q).determined)
    });
    group.bench_function("bruteforce(domain<=2)", |b| {
        b.iter(|| brute_force_search(&boolean_views, &q_cq, 2, 2_000).refuted())
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths/eval");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    let schema = Schema::binary(["R0", "R1"]);
    for &len in &[2usize, 4, 6] {
        let q = PathQuery::new((0..len).map(|i| format!("R{}", i % 2)));
        let d = hom_target(12, 40, 0xE7A1 + len as u64);
        group.bench_with_input(
            BenchmarkId::new("matrix(Fact18)", len),
            &(q.clone(), d.clone()),
            |b, (q, d)| b.iter(|| eval_path_matrix(q, d)),
        );
        group.bench_with_input(
            BenchmarkId::new("naive-hom", len),
            &(q, d, schema.clone()),
            |b, (q, d, s)| b.iter(|| eval_cq(&q.to_cq("q"), s, d)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decision,
    bench_decision_vs_bruteforce,
    bench_evaluation
);
criterion_main!(benches);
