//! Experiment BATCH: the batch decision engine vs one-shot calls.
//!
//! Batches of tasks sharing one pool of views, decided (a) by independent
//! `decide_bag_determinacy` calls, whose caches die with each call, and
//! (b) through one `DecisionSession` per batch, whose cross-request caches
//! (frozen bodies, canonical keys, components, containment gates) are
//! shared by every task.  Witnesses are off on both sides so the numbers
//! compare decision cost only; see `cqdet-bench` (the binary) for the same
//! workload with JSON output and EXPERIMENTS.md §BATCH for recorded runs.

use cqdet_bench::{batch_workload, BATCH_SHARED_VIEWS, BATCH_TASK_COUNTS};
use cqdet_core::decide_bag_determinacy;
use cqdet_engine::{DecisionSession, SessionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn session_config() -> SessionConfig {
    SessionConfig {
        witnesses: false,
        verify: false,
        ..Default::default()
    }
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(1));
    for &num_tasks in BATCH_TASK_COUNTS {
        let tasks = batch_workload(num_tasks, BATCH_SHARED_VIEWS, 0xBA7C + num_tasks as u64);
        group.bench_with_input(BenchmarkId::new("fresh", num_tasks), &tasks, |b, tasks| {
            b.iter(|| {
                tasks
                    .iter()
                    .filter(|t| {
                        decide_bag_determinacy(&t.views, &t.query)
                            .unwrap()
                            .determined
                    })
                    .count()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("session", num_tasks),
            &tasks,
            |b, tasks| {
                b.iter(|| {
                    let session = DecisionSession::with_config(session_config());
                    session.decide_batch(tasks).records.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
