//! `cqdet-bench` — a self-contained perf harness for the two hot kernels
//! (hom-counting and the Theorem 3 decision procedure), with JSON output for
//! baseline tracking (see `EXPERIMENTS.md` and `BENCH_hom.json`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cqdet-bench -- [--json FILE] [--quick] [--only FAMILIES]
//! ```
//!
//! `--only` takes a comma-separated list of workload families (`hom`,
//! `decide`, `batch`, `serve`, `linalg`, `dedup`, `soak`, `cache`, `delta`)
//! and skips the rest — CI uses it to smoke the two kernel families in one release run.  Every JSON
//! row carries a `label` field (the `CQDET_BENCH_LABEL` env var if set, else
//! the current git commit) so baselines in `BENCH_hom.json` stay
//! attributable across PRs.
//!
//! Every hom measurement runs on both homomorphism engines in the same
//! process: the interned flat-index engine (`hom_count`) and the retained
//! naive `BTreeMap` reference engine (`hom::reference::hom_count`).  The
//! `decide` workload uses whatever engine the process-wide `CQDET_NAIVE_HOM`
//! flag selects, so run the harness twice (with and without
//! `CQDET_NAIVE_HOM=1`) to compare full-pipeline numbers.

use cqdet_bench::{
    batch_workload, decide_workload, dedup_components_workload, hom_source, hom_target,
    serve_request_line, serve_workload, soak_workload, span_workload, span_workload_seed, SoakCore,
    BATCH_SHARED_VIEWS, BATCH_TASK_COUNTS, DECIDE_MANY_VIEW_COUNTS, LINALG_SPAN_SHAPES,
    SERVE_SHARED_VIEWS, SERVE_TASK_COUNTS, SOAK_CONNECTIONS, SOAK_PIPELINE_WINDOW, SOAK_REQUESTS,
};
use cqdet_core::decide_bag_determinacy;
use cqdet_engine::{DecisionSession, SessionConfig};
use cqdet_linalg::{span_coefficients, span_coefficients_exact, QMat};
use cqdet_structure::{dedup_up_to_iso, hom};
use std::io::Write as _;
use std::time::Instant;

struct Harness {
    json_path: Option<String>,
    samples: usize,
    min_iters: u64,
    /// Provenance stamp written into every JSON row.
    label: String,
    /// `--only` family filter; `None` runs everything.
    families: Option<Vec<String>>,
}

impl Harness {
    /// Whether the `--only` filter admits workload family `family`.
    fn family_enabled(&self, family: &str) -> bool {
        self.families
            .as_ref()
            .is_none_or(|fs| fs.iter().any(|f| f == family))
    }

    /// Time `f`, printing mean per-iteration time and appending a JSON line.
    fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warm up and size the batch so one sample lasts ≥ ~20ms.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.02 / once) as u64).clamp(self.min_iters, 100_000);
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0, f64::max);
        println!(
            "{name:<44} mean {:>12}  (min {:>12}, max {:>12})",
            ns(mean),
            ns(min),
            ns(max)
        );
        self.append_json(format!(
            "{{\"benchmark\":\"{name}\",\"label\":\"{}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{},\"iters_per_sample\":{iters}}}\n",
            self.label, self.samples
        ));
    }

    /// Append one pre-rendered JSON line to the `--json` target (no-op
    /// without one) — the escape hatch for rows that are not mean/min/max
    /// timings, like the §SOAK throughput + latency-quantile rows.
    fn append_json(&self, line: String) {
        if let Some(path) = &self.json_path {
            let mut fh = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .expect("open json output");
            fh.write_all(line.as_bytes()).expect("write json output");
        }
    }
}

fn ns(v: f64) -> String {
    if v < 1e3 {
        format!("{v:.1} ns")
    } else if v < 1e6 {
        format!("{:.2} µs", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2} ms", v / 1e6)
    } else {
        format!("{:.2} s", v / 1e9)
    }
}

/// Provenance label for JSON rows: `CQDET_BENCH_LABEL` if set, else the
/// current git commit (short), else `"unknown"`.  Quotes/backslashes are
/// stripped so the label can be embedded in a JSON string verbatim.
fn bench_label() -> String {
    let raw = std::env::var("CQDET_BENCH_LABEL").ok().or_else(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    });
    raw.map(|s| {
        s.trim()
            .chars()
            .filter(|c| !matches!(c, '"' | '\\'))
            .collect::<String>()
    })
    .filter(|s| !s.is_empty())
    .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = None;
    let mut quick = false;
    let mut families: Option<Vec<String>> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--json" => json_path = iter.next().cloned(),
            "--quick" => quick = true,
            "--only" => {
                let Some(list) = iter.next() else {
                    eprintln!("--only requires a comma-separated family list");
                    std::process::exit(2);
                };
                let fs: Vec<String> = list
                    .split(',')
                    .map(|f| f.trim().to_string())
                    .filter(|f| !f.is_empty())
                    .collect();
                const KNOWN: [&str; 9] = [
                    "hom", "decide", "batch", "serve", "linalg", "dedup", "soak", "cache", "delta",
                ];
                for f in &fs {
                    if !KNOWN.contains(&f.as_str()) {
                        eprintln!("unknown family {f:?}; known: {}", KNOWN.join(", "));
                        std::process::exit(2);
                    }
                }
                families = Some(fs);
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: cqdet-bench [--json FILE] [--quick] [--only FAMILIES]"
                );
                std::process::exit(2);
            }
        }
    }
    // Fail fast on an unwritable JSON target instead of panicking after the
    // first measurement.
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            eprintln!("error: cannot open --json file {path:?}: {e}");
            std::process::exit(2);
        }
    }
    let h = Harness {
        json_path,
        samples: if quick { 3 } else { 10 },
        min_iters: 1,
        label: bench_label(),
        families,
    };
    let engine = if std::env::var("CQDET_NAIVE_HOM").as_deref() == Ok("1") {
        "naive"
    } else {
        "flat"
    };
    println!("# cqdet-bench (decide pipeline engine: {engine})\n");

    // HOM: the acceptance workload — domain 16, 40 facts — plus a sweep.
    // Both engines measured in-process: `hom/flat/...` is the interned
    // flat-index engine, `hom/naive/...` the retained BTreeMap reference.
    if h.family_enabled("hom") {
        let source = hom_source();
        for (dom, facts) in [(8usize, 24usize), (16, 40), (16, 48), (32, 96)] {
            let target = hom_target(dom, facts, 0xBEEF + dom as u64);
            // Sanity: engines agree before we publish numbers for them.
            assert_eq!(
                hom::reference::hom_count(&source, &target),
                cqdet_structure::hom_count(&source, &target),
                "engines disagree on dom={dom} facts={facts}"
            );
            h.bench(&format!("hom/flat/{dom}x{facts}"), || {
                cqdet_structure::hom_count(&source, &target)
            });
            h.bench(&format!("hom/factored/{dom}x{facts}"), || {
                cqdet_structure::hom_count_factored(&source, &target)
            });
            h.bench(&format!("hom/naive/{dom}x{facts}"), || {
                hom::reference::hom_count(&source, &target)
            });
        }
    }

    // DECIDE: the acceptance workload — 16 views × 4 atoms — plus a sweep.
    if h.family_enabled("decide") {
        for (views, atoms) in [(4usize, 3usize), (16, 4), (32, 3)] {
            for planted in [true, false] {
                let (v, q) = decide_workload(views, atoms, planted, 0xC0DE + views as u64);
                let label = if planted { "planted" } else { "independent" };
                h.bench(&format!("decide/{label}/{views}x{atoms}"), || {
                    decide_bag_determinacy(&v, &q).unwrap().determined
                });
            }
        }
    }

    // DEDUP: many planted views — isomorphism-class bookkeeping (basis
    // construction + vector extraction) dominates the pipeline (§DEDUP).
    let many_view_counts: &[usize] = if quick {
        &DECIDE_MANY_VIEW_COUNTS[..1]
    } else {
        DECIDE_MANY_VIEW_COUNTS
    };
    if h.family_enabled("decide") {
        for &views in many_view_counts {
            let (v, q) = decide_workload(views, 3, true, 0xD15C + views as u64);
            h.bench(&format!("decide/many-views/{views}x3"), || {
                decide_bag_determinacy(&v, &q).unwrap().determined
            });
        }
    }
    // BATCH: many tasks sharing one view pool — the cross-request cache
    // regime of the batch engine (§BATCH).  `fresh` runs one-shot
    // `decide_bag_determinacy` per task (caches die with each call);
    // `session` runs the same tasks through one `DecisionSession` per batch
    // (cold caches at batch start, shared within the batch), witnesses off
    // on both sides so the comparison is decision cost only.
    let batch_task_counts: &[usize] = if quick {
        &BATCH_TASK_COUNTS[..1]
    } else {
        BATCH_TASK_COUNTS
    };
    for &num_tasks in batch_task_counts {
        if !h.family_enabled("batch") {
            break;
        }
        let tasks = batch_workload(num_tasks, BATCH_SHARED_VIEWS, 0xBA7C + num_tasks as u64);
        // Sanity: the two paths agree before we publish numbers for them.
        {
            let session = DecisionSession::with_config(SessionConfig {
                witnesses: false,
                verify: false,
                ..Default::default()
            });
            let report = session.decide_batch(&tasks);
            assert!(
                report
                    .records
                    .iter()
                    .all(|r| r.status == cqdet_engine::TaskStatus::Determined),
                "batch workload must be determined by construction"
            );
            let stats = report.stats;
            assert!(
                stats.frozen_hits > 0 && stats.gate_hits > 0,
                "shared session must show cache hits: {stats:?}"
            );
        }
        h.bench(
            &format!("batch/fresh/{num_tasks}x{BATCH_SHARED_VIEWS}"),
            || {
                tasks
                    .iter()
                    .filter(|t| {
                        decide_bag_determinacy(&t.views, &t.query)
                            .unwrap()
                            .determined
                    })
                    .count()
            },
        );
        h.bench(
            &format!("batch/session/{num_tasks}x{BATCH_SHARED_VIEWS}"),
            || {
                let session = DecisionSession::with_config(SessionConfig {
                    witnesses: false,
                    verify: false,
                    ..Default::default()
                });
                session.decide_batch(&tasks).records.len()
            },
        );
    }

    // SERVE: protocol overhead of the JSON-lines server loop (§SERVE).
    // Three series on the same workload:
    //   decide_only — fresh session, `decide_batch` over pre-parsed tasks,
    //                 records kept in memory (the lower bound);
    //   direct      — the full in-process certificate path, exactly what
    //                 `cqdet batch` does: task-file parse + decide_batch +
    //                 every record and the stats line rendered to JSON;
    //   protocol    — the server loop on one batch request: request JSON
    //                 parse + task-file parse + dispatch through
    //                 `Engine::submit` + the response envelope rendered.
    // `direct` and `protocol` both emit the full certificates, so their gap
    // is the protocol framing itself (request decode + response envelope);
    // the acceptance gate is protocol/direct < 1.10.
    let serve_task_counts: &[usize] = if quick {
        &SERVE_TASK_COUNTS[..1]
    } else {
        SERVE_TASK_COUNTS
    };
    for &num_tasks in serve_task_counts {
        if !h.family_enabled("serve") {
            break;
        }
        let tasks = serve_workload(num_tasks, 0x5E4E + num_tasks as u64);
        let line = serve_request_line(&tasks);
        // Sanity: both paths agree before we publish numbers for them.
        {
            let engine = cqdet_service::Engine::new();
            let response =
                cqdet_service::respond_to_line(&engine, &line).expect("non-blank request");
            let wire = response.to_json();
            assert_eq!(
                wire.get("type").and_then(cqdet_engine::Json::as_str),
                Some("batch"),
                "server loop must answer the batch request: {wire:?}"
            );
            let records = wire
                .get("records")
                .and_then(cqdet_engine::Json::as_arr)
                .expect("records");
            assert!(records.iter().all(
                |r| r.get("status").and_then(cqdet_engine::Json::as_str) == Some("determined")
            ));
        }
        let tasks_text = cqdet_bench::tasks_to_taskfile(&tasks);
        h.bench(
            &format!("serve/decide_only/{num_tasks}x{SERVE_SHARED_VIEWS}"),
            || {
                let session = DecisionSession::with_config(SessionConfig {
                    witnesses: false,
                    verify: false,
                    ..Default::default()
                });
                session.decide_batch(&tasks).records.len()
            },
        );
        h.bench(
            &format!("serve/direct/{num_tasks}x{SERVE_SHARED_VIEWS}"),
            || {
                let file = cqdet_engine::parse_task_file(&tasks_text).expect("task file");
                let session = DecisionSession::with_config(SessionConfig {
                    witnesses: false,
                    verify: false,
                    ..Default::default()
                });
                let report = session.decide_batch(&file.tasks);
                let mut bytes = 0usize;
                for record in &report.records {
                    bytes += record.to_json().render().len();
                }
                bytes + cqdet_engine::stats_json(&report.stats).render().len()
            },
        );
        h.bench(
            &format!("serve/protocol/{num_tasks}x{SERVE_SHARED_VIEWS}"),
            || {
                let engine = cqdet_service::Engine::new();
                let response = cqdet_service::respond_to_line(&engine, &line).expect("request");
                response.to_json().render().len()
            },
        );
    }

    // SOAK: the serving layer under sustained concurrent load (§SOAK) —
    // 32 pipelined connections pushing 100k requests (4k under `--quick`)
    // through an in-process server, on BOTH cores: the event-driven
    // reactor (`soak/reactor/...`) and the retained thread-per-connection
    // twin (`soak/threaded/...`, the baseline the reactor must not lose
    // to).  The harness asserts the invariants while it measures: every
    // request answered exactly once, typed, ids echoed in pipeline order,
    // no read stalled ≥ 30 s.  Rows carry throughput and latency
    // quantiles instead of mean/min/max timings.
    if h.family_enabled("soak") {
        let total = if quick { 4_000 } else { SOAK_REQUESTS };
        for (name, core) in [
            ("reactor", SoakCore::Reactor),
            ("threaded", SoakCore::Threaded),
        ] {
            let r = soak_workload(core, SOAK_CONNECTIONS, total, SOAK_PIPELINE_WINDOW);
            println!(
                "soak/{name}/{SOAK_CONNECTIONS}x{total:<24} {:>10.0} req/s  p50 {:>9}  p95 {:>9}  p99 {:>9}  mean {:>9}",
                r.throughput_rps,
                ns(r.p50_us * 1e3),
                ns(r.p95_us * 1e3),
                ns(r.p99_us * 1e3),
                ns(r.mean_us * 1e3),
            );
            assert_eq!(r.requests, total, "soak must answer every request");
            assert_eq!(r.shed, 0, "soak budget is sized to never shed");
            assert!(
                r.served >= total as u64,
                "server must count every soak response: served {} < {total}",
                r.served
            );
            h.append_json(format!(
                "{{\"benchmark\":\"soak/{name}/{SOAK_CONNECTIONS}x{total}\",\"label\":\"{}\",\"throughput_rps\":{:.1},\"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1},\"mean_us\":{:.1},\"requests\":{},\"connections\":{SOAK_CONNECTIONS},\"window\":{SOAK_PIPELINE_WINDOW},\"shed\":{},\"elapsed_s\":{:.3}}}\n",
                h.label, r.throughput_rps, r.p50_us, r.p95_us, r.p99_us, r.mean_us, r.requests,
                r.shed, r.elapsed_s
            ));
        }
    }

    // LINALG: the exact span/rank kernels on tall bignum systems — the
    // regime where hom-count entries make dense rational elimination pay
    // bignum gcd/mul per pivot step (§LINALG).  `span/*` runs the tiered
    // solver (modular prescreen + exact verification; set
    // CQDET_EXACT_LINALG=1 for the pure-Rat baseline); `rank/*` is the
    // exact elimination with content normalization + smallest-pivot
    // selection.
    for &(k, n, bits) in LINALG_SPAN_SHAPES {
        if !h.family_enabled("linalg") {
            break;
        }
        let (gens, inside, outside) = span_workload(k, n, bits, span_workload_seed(bits));
        // Sanity before publishing numbers: the tiered answers are exactly
        // verified internally, and on the word-size shape the pure-Rat
        // oracle cross-checks them (the 256-bit oracle run is what the
        // CQDET_EXACT_LINALG=1 series measures).
        assert!(
            span_coefficients(&gens, &inside).is_some(),
            "planted target must be in span ({k}x{n}/{bits})"
        );
        assert!(
            span_coefficients(&gens, &outside).is_none(),
            "probe must be out of span ({k}x{n}/{bits})"
        );
        if bits <= 64 {
            assert!(span_coefficients_exact(&gens, &inside).is_some());
            assert!(span_coefficients_exact(&gens, &outside).is_none());
        }
        h.bench(&format!("linalg/span/in/{k}x{n}/{bits}bit"), || {
            span_coefficients(&gens, &inside).is_some()
        });
        h.bench(&format!("linalg/span/out/{k}x{n}/{bits}bit"), || {
            span_coefficients(&gens, &outside).is_some()
        });
        let m = QMat::from_cols(&gens);
        h.bench(&format!("linalg/rank/{k}x{n}/{bits}bit"), || m.rank());
    }

    // Micro-bench of the de-duplication kernel itself, on exactly the
    // component list step 2 of the pipeline feeds it.  Each iteration
    // rebuilds fresh structures (`map_constants` identity drops the cached
    // flat form): a plain clone would share the canonical key computed in
    // the first iteration and measure only hash lookups, not the
    // canonization the kernel pays on fresh components.
    for &views in many_view_counts {
        if !h.family_enabled("dedup") {
            break;
        }
        let comps = dedup_components_workload(views, 0xD15C + views as u64);
        h.bench(&format!("dedup/components/{views}"), || {
            let fresh: Vec<_> = comps.iter().map(|s| s.map_constants(|c| c)).collect();
            dedup_up_to_iso(fresh).len()
        });
    }

    // CACHE: cache governance (§CACHE) — what the byte cap costs, and what
    // warm-start persistence buys.
    //   uncapped/capped64k — the same 16-instance decide stream through one
    //     long-lived `Engine`: the uncapped engine reaches steady-state
    //     all-hits, the 64 KiB engine (working set far above the cap) keeps
    //     evicting and recomputing — the gap is the price of the cap.
    //   cold_first/warm_first — one expensive decide on a fresh engine,
    //     cold versus booted from a snapshot of a session that has already
    //     solved it (snapshot load *included* in the warm timing); warm
    //     must win — the acceptance gate of the §CACHE experiment.
    if h.family_enabled("cache") {
        use cqdet_service::{Engine, Request, RequestKind};
        let decide_request = |id: String, program: &str, query: &str| Request {
            id,
            deadline_ms: None,
            budget: None,
            kind: RequestKind::Decide {
                program: program.to_string(),
                query: query.to_string(),
                witness: false,
            },
        };
        let instances: Vec<(String, String)> = (0..16)
            .map(|i| {
                let (views, query) = decide_workload(3, 2, i % 2 == 0, 0xCACE + i as u64);
                let name = query.name().to_string();
                let program = views
                    .iter()
                    .map(|v| v.to_string())
                    .chain(std::iter::once(query.to_string()))
                    .collect::<Vec<_>>()
                    .join("\n");
                (program, name)
            })
            .collect();
        let submit_stream = |engine: &Engine| -> Vec<String> {
            instances
                .iter()
                .enumerate()
                .map(|(i, (program, name))| {
                    let response = engine.submit(decide_request(format!("c{i}"), program, name));
                    assert!(!response.is_error(), "cache stream instance {i} failed");
                    response.to_json().render()
                })
                .collect()
        };
        const CAP: u64 = 64 * 1024;
        // Sanity before publishing numbers: under the cap the answers are
        // byte-identical, the cap is actually binding (evictions observed),
        // and every governed session cache honors its byte budget.
        {
            let uncapped = Engine::new();
            let capped = Engine::new();
            capped.set_cache_bytes(Some(CAP));
            for round in 0..2 {
                let free = submit_stream(&uncapped);
                let governed = submit_stream(&capped);
                assert_eq!(free, governed, "cap changed an answer (round {round})");
            }
            let stats_response = capped.submit(Request {
                id: "stats".into(),
                deadline_ms: None,
                budget: None,
                kind: RequestKind::Stats,
            });
            let cqdet_service::Response::Stats { stats, .. } = stats_response else {
                panic!("stats request failed");
            };
            let evictions = stats.frozen_usage.evictions
                + stats.gate_usage.evictions
                + stats.span_usage.evictions
                + stats.hom_usage.evictions
                + stats.cand_usage.evictions;
            assert!(evictions > 0, "64 KiB cap never evicted: {stats:?}");
            for (tag, usage) in [
                ("frozen", &stats.frozen_usage),
                ("gate", &stats.gate_usage),
                ("span", &stats.span_usage),
                ("hom", &stats.hom_usage),
            ] {
                assert!(
                    usage.bytes <= usage.cap,
                    "{tag} cache over budget: {} > {}",
                    usage.bytes,
                    usage.cap
                );
            }
            capped.set_cache_bytes(None);
        }
        {
            let uncapped = Engine::new();
            h.bench("cache/uncapped/16x3x2", || submit_stream(&uncapped).len());
        }
        {
            let capped = Engine::new();
            capped.set_cache_bytes(Some(CAP));
            h.bench("cache/capped64k/16x3x2", || submit_stream(&capped).len());
            // Cap and watermark of the candidate-memo family are
            // process-global: restore the defaults.
            capped.set_cache_bytes(None);
        }

        let snapshot_path =
            std::env::temp_dir().join(format!("cqdet-bench-snapshot-{}.cqds", std::process::id()));
        // The K8-view/K7-query clique instance: its containment gate check
        // is a backtracking hom search visiting >10k candidate extensions,
        // and the gate *verdict* is exactly what the snapshot persists — so
        // this is the workload where warm start pays, as opposed to
        // canonization-bound instances whose cost no snapshot can carry.
        let clique = |name: &str, n: usize| {
            let atoms: Vec<String> = (0..n)
                .flat_map(|i| {
                    (0..n)
                        .filter(move |&j| j != i)
                        .map(move |j| format!("R(x{i},x{j})"))
                })
                .collect();
            format!("{name}() :- {}", atoms.join(", "))
        };
        let first_name = "q".to_string();
        let first_program = format!("{}\n{}", clique("v", 8), clique("q", 7));
        {
            let warmer = Engine::new();
            let response =
                warmer.submit(decide_request("warm".into(), &first_program, &first_name));
            assert!(!response.is_error(), "warm-up decide failed");
            warmer
                .save_snapshot(&snapshot_path)
                .expect("save bench snapshot");
        }
        let runs = if quick { 5 } else { 15 };
        let mut cold_ns = Vec::with_capacity(runs);
        let mut warm_ns = Vec::with_capacity(runs);
        for _ in 0..runs {
            let engine = Engine::new();
            let t = Instant::now();
            let response =
                engine.submit(decide_request("first".into(), &first_program, &first_name));
            cold_ns.push(t.elapsed().as_secs_f64() * 1e9);
            assert!(!response.is_error(), "cold first request failed");

            let engine = Engine::new();
            let t = Instant::now();
            engine
                .load_snapshot(&snapshot_path)
                .expect("load bench snapshot");
            let response =
                engine.submit(decide_request("first".into(), &first_program, &first_name));
            warm_ns.push(t.elapsed().as_secs_f64() * 1e9);
            assert!(!response.is_error(), "warm first request failed");
        }
        let _ = std::fs::remove_file(&snapshot_path);
        let summarize = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = v.iter().cloned().fold(0.0f64, f64::max);
            (mean, min, max)
        };
        let (cold_mean, cold_min, cold_max) = summarize(&cold_ns);
        let (warm_mean, warm_min, warm_max) = summarize(&warm_ns);
        for (name, mean, min, max) in [
            ("cache/cold_first/clique8x7", cold_mean, cold_min, cold_max),
            ("cache/warm_first/clique8x7", warm_mean, warm_min, warm_max),
        ] {
            println!(
                "{name:<44} mean {:>12}  (min {:>12}, max {:>12})",
                ns(mean),
                ns(min),
                ns(max)
            );
            h.append_json(format!(
                "{{\"benchmark\":\"{name}\",\"label\":\"{}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{runs},\"iters_per_sample\":1}}\n",
                h.label
            ));
        }
        assert!(
            warm_mean < cold_mean,
            "warm start must beat cold start: warm {} >= cold {}",
            ns(warm_mean),
            ns(cold_mean)
        );
    }

    // DELTA: mutable decision sessions (§DELTA) — a warm 64-view
    // `MutableSession` absorbing an add + redecide + remove churn cycle per
    // request, against rebuild-per-request: a client that holds no session
    // open and pays `MutableSession::open` + `redecide` on the full 65-view
    // set for every request, through the *same* shared caches.  Gate
    // verdicts, frozen bodies and Def 29 vectors are warm on both sides, so
    // the gap isolates what the warm session keeps that a rebuild cannot:
    // the prepared layout and the span echelon (the churn add folds one
    // generator into the reduced echelon and its removal compacts a
    // dependent slot; the rebuild re-prepares and re-eliminates all 65
    // rows).  A one-shot `decide_bag_determinacy_in` row rides along as a
    // cache-warm floor reference.  The acceptance gate asserts
    // redecide-after-add beats the rebuild.
    if h.family_enabled("delta") {
        use cqdet_bench::{delta_workload, DELTA_CHURN_VIEWS, DELTA_SESSION_VIEWS};
        use cqdet_core::{
            decide_bag_determinacy_in, Budget, CancelToken, DecisionContext, MutableSession,
        };
        let ctl = CancelToken::none();
        let nb = Budget::none();
        let (views, query, extras) = delta_workload(DELTA_SESSION_VIEWS, DELTA_CHURN_VIEWS);
        let cx = DecisionContext::new();
        let mut session = MutableSession::open(&cx, views.clone(), query.clone(), 8, &ctl, &nb)
            .expect("open delta session");
        // Warm both paths and sanity-check agreement on every churn step
        // before publishing numbers.
        let base = session.redecide(&cx, &ctl, &nb).expect("warm redecide");
        assert!(base.determined, "delta workload must be determined");
        for extra in &extras {
            session
                .view_add(&cx, extra.clone(), &ctl, &nb)
                .expect("churn add");
            let got = session.redecide(&cx, &ctl, &nb).expect("churn redecide");
            let mut wide = views.clone();
            wide.push(extra.clone());
            let oracle = decide_bag_determinacy_in(&cx, &wide, &query).expect("churn oracle");
            assert_eq!(got.determined, oracle.determined, "session diverged");
            assert_eq!(got.coefficients, oracle.coefficients, "session diverged");
            session
                .view_remove(&cx, DELTA_SESSION_VIEWS, &ctl, &nb)
                .expect("churn remove");
        }
        assert!(
            session.counters().fast_removals + session.counters().replays > 0,
            "delta churn must exercise the removal-repair path"
        );
        let runs = if quick { 60 } else { 300 };
        let mut session_ns = Vec::with_capacity(runs);
        let mut rebuild_ns = Vec::with_capacity(runs);
        let mut oneshot_ns = Vec::with_capacity(runs);
        for i in 0..runs {
            let extra = extras[i % extras.len()].clone();
            session.view_add(&cx, extra, &ctl, &nb).expect("timed add");
            let t = Instant::now();
            let got = session.redecide(&cx, &ctl, &nb).expect("timed redecide");
            session_ns.push(t.elapsed().as_secs_f64() * 1e9);
            std::hint::black_box(got.determined);
            session
                .view_remove(&cx, DELTA_SESSION_VIEWS, &ctl, &nb)
                .expect("timed remove");
        }
        for i in 0..runs {
            let mut wide = views.clone();
            wide.push(extras[i % extras.len()].clone());
            let t = Instant::now();
            let mut fresh = MutableSession::open(&cx, wide.clone(), query.clone(), 8, &ctl, &nb)
                .expect("timed reopen");
            let got = fresh.redecide(&cx, &ctl, &nb).expect("timed rebuild");
            rebuild_ns.push(t.elapsed().as_secs_f64() * 1e9);
            std::hint::black_box(got.determined);
            let t = Instant::now();
            let got = decide_bag_determinacy_in(&cx, &wide, &query).expect("timed one-shot");
            oneshot_ns.push(t.elapsed().as_secs_f64() * 1e9);
            std::hint::black_box(got.determined);
        }
        let quantile = |sorted: &[f64], q: f64| -> f64 {
            sorted[(((sorted.len() - 1) as f64) * q).round() as usize]
        };
        let counters = session.counters();
        let mut rows = Vec::new();
        for (name, samples) in [
            ("delta/session/redecide-after-add/64", session_ns),
            ("delta/rebuild/open+redecide/64", rebuild_ns),
            ("delta/reference/one-shot/64", oneshot_ns),
        ] {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let mut sorted = samples;
            sorted.sort_by(f64::total_cmp);
            let (p50, p95) = (quantile(&sorted, 0.50), quantile(&sorted, 0.95));
            println!(
                "{name:<44} mean {:>12}  (p50 {:>12}, p95 {:>12})",
                ns(mean),
                ns(p50),
                ns(p95)
            );
            h.append_json(format!(
                "{{\"benchmark\":\"{name}\",\"label\":\"{}\",\"mean_ns\":{mean:.1},\"p50_ns\":{p50:.1},\"p95_ns\":{p95:.1},\"runs\":{runs}}}\n",
                h.label
            ));
            rows.push(mean);
        }
        let (session_mean, rebuild_mean, _oneshot_mean) = (rows[0], rows[1], rows[2]);
        let speedup = rebuild_mean / session_mean;
        println!(
            "delta/speedup/64                             {speedup:>9.2}x  (replays {}, fast removals {}, rebuilds {})",
            counters.replays, counters.fast_removals, counters.rebuilds
        );
        h.append_json(format!(
            "{{\"benchmark\":\"delta/speedup/64\",\"label\":\"{}\",\"speedup\":{speedup:.3},\"session_mean_ns\":{session_mean:.1},\"rebuild_mean_ns\":{rebuild_mean:.1},\"replays\":{},\"fast_removals\":{},\"rebuilds\":{},\"runs\":{runs}}}\n",
            h.label, counters.replays, counters.fast_removals, counters.rebuilds
        ));
        assert!(
            session_mean < rebuild_mean,
            "redecide-after-add must beat the full rebuild: session {} >= rebuild {}",
            ns(session_mean),
            ns(rebuild_mean)
        );
    }
}
