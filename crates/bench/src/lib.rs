//! Shared workload definitions for the benchmark harness.
//!
//! Each bench target in `benches/` corresponds to one experiment of
//! `EXPERIMENTS.md`; this library crate holds the workload constructors so
//! that the benches and the documentation agree on the parameters.

use cqdet_core::{ConjunctiveQuery, PathQuery};
use cqdet_query::QueryGenerator;
use cqdet_structure::{Schema, Structure, StructureGenerator};

/// The parameter sweep for the decision-procedure experiment (T3-DECIDE):
/// number of views.
pub const DECIDE_VIEW_COUNTS: &[usize] = &[2, 4, 8, 16, 32];

/// The parameter sweep for the decision-procedure experiment: atoms per view.
pub const DECIDE_ATOM_COUNTS: &[usize] = &[2, 4, 8];

/// The parameter sweep for the linear-algebra kernel (T3-SPAN).
pub const SPAN_DIMENSIONS: &[usize] = &[4, 8, 16, 32, 64];

/// Domain sizes for the homomorphism-counting experiment (HOM).
pub const HOM_DOMAIN_SIZES: &[usize] = &[4, 8, 16, 32];

/// Path-query lengths for the PATH experiment.
pub const PATH_QUERY_LENGTHS: &[usize] = &[4, 8, 16, 32];

/// A deterministic decision-procedure workload: `count` views of
/// `atoms` atoms each, plus a query; `planted` controls whether the query is a
/// sum of view components (determined) or independent (usually undetermined).
pub fn decide_workload(
    count: usize,
    atoms: usize,
    planted: bool,
    seed: u64,
) -> (Vec<ConjunctiveQuery>, ConjunctiveQuery) {
    let mut generator = QueryGenerator::new(2, seed);
    generator.random_instance(count, atoms, planted)
}

/// A deterministic path-determinacy workload.
pub fn path_workload(
    query_len: usize,
    views: usize,
    derivable: bool,
    seed: u64,
) -> (Vec<PathQuery>, PathQuery) {
    let mut generator = QueryGenerator::new(3, seed);
    generator.random_path_instance(query_len, views, 2, derivable)
}

/// A deterministic random structure over a two-relation binary schema.
pub fn hom_target(domain: usize, facts: usize, seed: u64) -> Structure {
    let schema = Schema::binary(["R0", "R1"]);
    let mut generator = StructureGenerator::new(schema, seed);
    generator.random_with_facts(domain, facts)
}

/// The source pattern counted against [`hom_target`]: three disjoint 2-paths
/// (disconnected on purpose, so component factoring has something to do).
pub fn hom_source() -> Structure {
    let schema = Schema::binary(["R0", "R1"]);
    let mut s = Structure::new(schema);
    for i in 0..3u64 {
        s.add("R0", &[10 * i, 10 * i + 1]);
        s.add("R1", &[10 * i + 1, 10 * i + 2]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(
            decide_workload(4, 3, true, 7).1,
            decide_workload(4, 3, true, 7).1
        );
        assert_eq!(
            path_workload(8, 3, true, 7).1,
            path_workload(8, 3, true, 7).1
        );
        assert_eq!(hom_target(8, 20, 7), hom_target(8, 20, 7));
    }

    #[test]
    fn planted_decide_workloads_are_determined() {
        let (views, q) = decide_workload(3, 3, true, 42);
        let res = cqdet_core::decide_bag_determinacy(&views, &q).unwrap();
        assert!(res.determined);
    }

    #[test]
    fn derivable_path_workloads_are_determined() {
        let (views, q) = path_workload(8, 4, true, 42);
        assert!(cqdet_core::decide_path_determinacy(&views, &q).determined);
    }

    #[test]
    fn hom_source_is_disconnected() {
        assert!(!cqdet_structure::is_connected(&hom_source()));
        assert_eq!(
            cqdet_structure::connected_components(&hom_source()).len(),
            3
        );
    }
}
