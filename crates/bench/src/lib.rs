//! Shared workload definitions for the benchmark harness.
//!
//! Each bench target in `benches/` corresponds to one experiment of
//! `EXPERIMENTS.md`; this library crate holds the workload constructors so
//! that the benches and the documentation agree on the parameters.

use cqdet_bigint::{Int, Nat};
use cqdet_core::{ConjunctiveQuery, PathQuery};
use cqdet_engine::Task;
use cqdet_linalg::{QVec, Rat};
use cqdet_query::cq::Atom;
use cqdet_query::QueryGenerator;
use cqdet_structure::{Schema, Structure, StructureGenerator};

/// The parameter sweep for the decision-procedure experiment (T3-DECIDE):
/// number of views.
pub const DECIDE_VIEW_COUNTS: &[usize] = &[2, 4, 8, 16, 32];

/// The parameter sweep for the decision-procedure experiment: atoms per view.
pub const DECIDE_ATOM_COUNTS: &[usize] = &[2, 4, 8];

/// The parameter sweep for the many-views experiment (DEDUP): planted view
/// counts large enough that isomorphism-class bookkeeping (basis construction
/// and vector extraction) dominates the decision procedure.
pub const DECIDE_MANY_VIEW_COUNTS: &[usize] = &[64, 128, 256];

/// The parameter sweep for the linear-algebra kernel (T3-SPAN).
pub const SPAN_DIMENSIONS: &[usize] = &[4, 8, 16, 32, 64];

/// Domain sizes for the homomorphism-counting experiment (HOM).
pub const HOM_DOMAIN_SIZES: &[usize] = &[4, 8, 16, 32];

/// Path-query lengths for the PATH experiment.
pub const PATH_QUERY_LENGTHS: &[usize] = &[4, 8, 16, 32];

/// A deterministic decision-procedure workload: `count` views of
/// `atoms` atoms each, plus a query; `planted` controls whether the query is a
/// sum of view components (determined) or independent (usually undetermined).
pub fn decide_workload(
    count: usize,
    atoms: usize,
    planted: bool,
    seed: u64,
) -> (Vec<ConjunctiveQuery>, ConjunctiveQuery) {
    let mut generator = QueryGenerator::new(2, seed);
    generator.random_instance(count, atoms, planted)
}

/// Number of views held by the §DELTA mutable session.
pub const DELTA_SESSION_VIEWS: usize = 64;

/// Fresh views cycled through the §DELTA add/redecide/remove churn.
pub const DELTA_CHURN_VIEWS: usize = 8;

/// The §DELTA workload: `count` single-directed-path views (lengths
/// `1..=count`, so every view is its own isomorphism class and the span
/// echelon holds one generator per view), the query = the disjoint sum of
/// one path of each length (its Definition 29 vector is the sum of every
/// view vector, so the instance is determined and the solve walks the full
/// 64-generator system), and `extras` churn views `w_k = P_k ⊕ P_{k+1}`:
/// each is a fresh isomorphism class (so adds genuinely extend the
/// echelon) whose components are already basis elements and whose vector
/// is dependent (`v_k + v_{k+1}`), keeping the instance determined and the
/// removal on the dependent-slot compaction path.
pub fn delta_workload(
    count: usize,
    extras: usize,
) -> (
    Vec<ConjunctiveQuery>,
    ConjunctiveQuery,
    Vec<ConjunctiveQuery>,
) {
    // One directed path of each length in `lens`, fresh variables per path.
    let path_sum = |name: &str, lens: &[usize]| {
        let mut atoms = Vec::new();
        for (p, &len) in lens.iter().enumerate() {
            for i in 0..len {
                atoms.push(Atom {
                    relation: "E".to_string(),
                    vars: vec![format!("p{p}x{i}"), format!("p{p}x{}", i + 1)],
                });
            }
        }
        ConjunctiveQuery::boolean(name, atoms)
    };
    let views: Vec<ConjunctiveQuery> = (1..=count)
        .map(|i| path_sum(&format!("v{i}"), &[i]))
        .collect();
    let query = path_sum("q", &(1..=count).collect::<Vec<_>>());
    let extra: Vec<ConjunctiveQuery> = (1..=extras)
        .map(|k| path_sum(&format!("w{k}"), &[k, k + 1]))
        .collect();
    (views, query, extra)
}

/// The component list fed to `dedup_up_to_iso` by step 2 of the decision
/// procedure on the [`decide_workload`] instance with `count` planted views:
/// every connected component of every frozen view body plus the query body,
/// in pipeline order.  This is the input on which basis construction is
/// quadratic when de-duplication falls back to pairwise isomorphism searches.
pub fn dedup_components_workload(count: usize, seed: u64) -> Vec<Structure> {
    let (views, query) = decide_workload(count, 3, true, seed);
    let all: Vec<&ConjunctiveQuery> = views.iter().chain(std::iter::once(&query)).collect();
    let schema = cqdet_query::cq::common_schema(&all);
    let mut comps = Vec::new();
    for q in &all {
        let (body, _) = q.frozen_body_over(&schema);
        comps.extend(cqdet_structure::connected_components(&body));
    }
    comps
}

/// The parameter sweep for the batch-engine experiment (BATCH): number of
/// tasks per batch (each batch shares [`BATCH_SHARED_VIEWS`] views).
pub const BATCH_TASK_COUNTS: &[usize] = &[16, 64];

/// Number of views shared by every task of a [`batch_workload`] batch.
pub const BATCH_SHARED_VIEWS: usize = 8;

/// A deterministic batch workload: `num_tasks` decision tasks all sharing
/// the same pool of `num_views` random connected views.  Task `t`'s query is
/// the disjoint sum of the views at indices `{t, t+1, t+3} mod num_views`
/// with task-unique variable names, so
///
/// * every task is **determined** by construction (its vector is the sum of
///   three view vectors — Lemma 31 (⇐)), exercising the full
///   gate/basis/vector/span pipeline, and
/// * queries are textually distinct across tasks while their bodies fall
///   into `num_views` isomorphism classes, exactly the regime the
///   cross-request caches of `cqdet-engine` target: a fresh call re-freezes
///   and re-canonizes the 8 shared views per task, a session does it once.
pub fn batch_workload(num_tasks: usize, num_views: usize, seed: u64) -> Vec<Task> {
    planted_shared_view_tasks(num_tasks, num_views, 3, 4, &[0, 1, 3], seed)
}

/// The shared construction behind [`batch_workload`] and [`serve_workload`]:
/// `num_views` random connected views of `atoms` atoms over `vars`
/// variables; task `t`'s query is the disjoint sum of the views at indices
/// `{t + o : o ∈ offsets} mod num_views` with task-unique variable names
/// (determined by construction, textually distinct, few isomorphism
/// classes).
fn planted_shared_view_tasks(
    num_tasks: usize,
    num_views: usize,
    atoms: usize,
    vars: usize,
    offsets: &[usize],
    seed: u64,
) -> Vec<Task> {
    let mut generator = QueryGenerator::new(2, seed);
    let views: Vec<ConjunctiveQuery> = (0..num_views)
        .map(|i| generator.random_boolean_cq(&format!("v{i}"), atoms, vars, true))
        .collect();
    (0..num_tasks)
        .map(|t| {
            let chosen: Vec<usize> = offsets.iter().map(|&o| (t + o) % num_views).collect();
            let mut atoms = Vec::new();
            for &vi in &chosen {
                for a in views[vi].atoms() {
                    atoms.push(Atom {
                        relation: a.relation.clone(),
                        vars: a.vars.iter().map(|x| format!("{x}_t{t}c{vi}")).collect(),
                    });
                }
            }
            Task {
                id: format!("t{t}"),
                views: views.clone(),
                query: ConjunctiveQuery::boolean(format!("q{t}"), atoms),
            }
        })
        .collect()
}

/// The parameter sweep for the SERVE experiment: tasks per batch request.
pub const SERVE_TASK_COUNTS: &[usize] = &[16, 64];

/// Views shared by every task of a [`serve_workload`] request.
pub const SERVE_SHARED_VIEWS: usize = 8;

/// A serving-shaped workload: the [`batch_workload`] regime with realistic
/// per-task decision weight (8 shared views of 6 atoms; each query the
/// disjoint sum of four views, ~24 atoms), so the fixed protocol cost of
/// the server loop — request JSON parse, task-file parse, response render —
/// is measured against tasks whose *decision* dominates, as in production.
pub fn serve_workload(num_tasks: usize, seed: u64) -> Vec<Task> {
    planted_shared_view_tasks(num_tasks, SERVE_SHARED_VIEWS, 6, 7, &[0, 1, 2, 5], seed)
}

/// Serialize tasks back to the line-oriented task-file format (the SERVE
/// experiment feeds the server loop the same workload `decide_batch` gets as
/// structs).  Definitions are emitted once (views shared by many tasks
/// appear a single time), then one `task` line per task.
pub fn tasks_to_taskfile(tasks: &[Task]) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut definitions: BTreeMap<&str, String> = BTreeMap::new();
    for task in tasks {
        for v in &task.views {
            definitions.entry(v.name()).or_insert_with(|| v.to_string());
        }
        definitions
            .entry(task.query.name())
            .or_insert_with(|| task.query.to_string());
    }
    let mut out = String::new();
    for def in definitions.values() {
        let _ = writeln!(out, "{def}");
    }
    for task in tasks {
        let views: Vec<&str> = task.views.iter().map(|v| v.name()).collect();
        let _ = writeln!(
            out,
            "task {}: {} <- {}",
            task.id,
            task.query.name(),
            views.join(" ")
        );
    }
    out
}

/// The JSON-lines request driving the SERVE experiment: one `batch` request
/// over [`tasks_to_taskfile`]'s text, witnesses and verification off so the
/// comparison against direct `decide_batch` isolates protocol overhead
/// (request JSON parse + task-file parse + dispatch + response render).
pub fn serve_request_line(tasks: &[Task]) -> String {
    let tasks_json = cqdet_engine::Json::str(tasks_to_taskfile(tasks)).render();
    format!(
        "{{\"id\":\"bench\",\"type\":\"batch\",\"tasks\":{tasks_json},\"witnesses\":false,\"verify\":false}}"
    )
}

/// The chaos-soak request mix (`tests/chaos.rs`): `count` JSON-lines
/// requests cycling deterministically (in `seed`) through every request
/// family — decide instances determined and undetermined, small batches,
/// path and hilbert requests, stats probes — plus deliberately malformed
/// JSON, schema violations, and requests carrying tiny deadlines or fuel
/// budgets.  Every line demands a *typed* response (success, `parse`,
/// `schema`, `timeout` or `resource_exhausted`) — never a dropped
/// connection; `shutdown` is deliberately absent so the harness controls
/// the server's lifetime itself.
pub fn chaos_workload(count: usize, seed: u64) -> Vec<String> {
    use cqdet_engine::Json;
    let program_for = |i: usize, planted: bool| {
        let (views, query) = decide_workload(3, 2, planted, seed ^ (i as u64).wrapping_mul(0x9E37));
        let name = query.name().to_string();
        let program = views
            .iter()
            .map(|v| v.to_string())
            .chain(std::iter::once(query.to_string()))
            .collect::<Vec<_>>()
            .join("\n");
        (program, name)
    };
    (0..count)
        .map(|i| {
            let id = Json::str(format!("c{i}")).render();
            match i % 10 {
                0 => {
                    let (program, name) = program_for(i, true);
                    format!(
                        "{{\"id\":{id},\"type\":\"decide\",\"program\":{},\"query\":{}}}",
                        Json::str(program).render(),
                        Json::str(name).render()
                    )
                }
                1 => {
                    let (program, name) = program_for(i, false);
                    format!(
                        "{{\"id\":{id},\"type\":\"decide\",\"program\":{},\"query\":{},\"witness\":true}}",
                        Json::str(program).render(),
                        Json::str(name).render()
                    )
                }
                2 => {
                    let tasks = batch_workload(2, 3, seed ^ i as u64);
                    format!(
                        "{{\"id\":{id},\"type\":\"batch\",\"tasks\":{},\"witnesses\":false,\"verify\":false}}",
                        Json::str(tasks_to_taskfile(&tasks)).render()
                    )
                }
                3 => format!(
                    "{{\"id\":{id},\"type\":\"path\",\"query\":\"ABAB\",\"views\":[\"AB\",\"ABA\"]}}"
                ),
                4 => format!(
                    "{{\"id\":{id},\"type\":\"hilbert\",\"bound\":3,\"monomials\":[\"+1:x\",\"-2:\"]}}"
                ),
                5 => format!("{{\"id\":{id},\"type\":\"stats\"}}"),
                // A request-level fuel budget small enough to trip on any
                // non-cached decide: a typed resource_exhausted, not a hang.
                6 => {
                    let (program, name) = program_for(i, true);
                    format!(
                        "{{\"id\":{id},\"type\":\"decide\",\"program\":{},\"query\":{},\"budget\":{}}}",
                        Json::str(program).render(),
                        Json::str(name).render(),
                        16 + (seed ^ i as u64) % 64
                    )
                }
                // An already-expired deadline: a typed timeout.
                7 => {
                    let (program, name) = program_for(i, true);
                    format!(
                        "{{\"id\":{id},\"type\":\"decide\",\"program\":{},\"query\":{},\"deadline_ms\":0}}",
                        Json::str(program).render(),
                        Json::str(name).render()
                    )
                }
                // Malformed JSON: a typed parse error (id not recoverable).
                8 => format!("{{\"id\":{id},\"type\":\"decide\" broken"),
                // A schema violation: unknown member, typed schema error.
                _ => format!("{{\"id\":{id},\"type\":\"stats\",\"bogus\":1}}"),
            }
        })
        .collect()
}

/// Concurrent connections driven by the §SOAK experiment.
pub const SOAK_CONNECTIONS: usize = 32;

/// Total requests a full (non-`--quick`) §SOAK run pushes through the
/// server, spread evenly across [`SOAK_CONNECTIONS`] connections.
pub const SOAK_REQUESTS: usize = 100_000;

/// Pipelining window per soak connection: how many requests a client keeps
/// outstanding before reading a response.
pub const SOAK_PIPELINE_WINDOW: usize = 64;

/// Which serving core a [`soak_workload`] run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoakCore {
    /// The event-driven reactor (`serve_tcp`'s default path).
    Reactor,
    /// The retained thread-per-connection twin (the baseline).
    Threaded,
}

/// What one §SOAK run observed: every response was typed and arrived in
/// order (enforced inside, a violation panics the harness), so the report
/// is pure performance — client-observed latency quantiles and end-to-end
/// throughput — plus the shed count for visibility.
#[derive(Debug)]
pub struct SoakReport {
    /// Requests sent (= responses received; a drop or hang panics).
    pub requests: usize,
    /// Responses that were typed `resource_exhausted` sheds (the workload
    /// sizes the in-flight budget so this is normally zero).
    pub shed: usize,
    /// Requests the server reported having served at shutdown.
    pub served: u64,
    /// Wall-clock seconds from first byte written to last response read.
    pub elapsed_s: f64,
    /// `requests / elapsed_s`.
    pub throughput_rps: f64,
    /// Client-observed latency quantiles in microseconds (pipelined, so
    /// they include queueing behind the connection's own window).
    pub mean_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
}

/// The §SOAK experiment: `connections` concurrent pipelined clients push
/// `total_requests` requests (a stats-heavy mix with periodic cache-hot
/// decides) through one in-process server running the chosen `core`, each
/// client keeping up to `window` requests outstanding.
///
/// The harness *asserts* the serving invariants while measuring: every
/// request gets exactly one response, every response parses as JSON with a
/// `type` member and echoes its request id in pipeline order, and no read
/// stalls longer than 30 s (a hang fails the run rather than wedging it).
pub fn soak_workload(
    core: SoakCore,
    connections: usize,
    total_requests: usize,
    window: usize,
) -> SoakReport {
    use cqdet_engine::Json;
    use std::collections::VecDeque;
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    let engine = Arc::new(cqdet_service::Engine::new());
    let options = cqdet_service::ServeOptions {
        max_connections: connections + 8,
        worker_threads: 0,
        // Sized so a fully loaded pipeline (every client at its window)
        // stays under budget: the soak measures throughput, not shedding
        // (`tests/serve.rs` covers the shed path).
        inflight_budget: (connections * window).saturating_mul(2).max(64),
        ..Default::default()
    };
    let (addr_tx, addr_rx) = mpsc::channel();
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || match core {
            SoakCore::Reactor => {
                cqdet_service::serve_tcp_reactor(&engine, "127.0.0.1:0", &options, |addr| {
                    let _ = addr_tx.send(addr);
                })
            }
            SoakCore::Threaded => {
                cqdet_service::serve_tcp_threaded(&engine, "127.0.0.1:0", &options, |addr| {
                    let _ = addr_tx.send(addr);
                })
            }
        })
    };
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("soak server must come up");

    // One shared program keeps the periodic decides cache-hot engine-wide:
    // the soak measures the serving layer, not the decision procedure.
    let (views, query) = decide_workload(3, 2, true, 0x50AC);
    let program = views
        .iter()
        .map(|v| v.to_string())
        .chain(std::iter::once(query.to_string()))
        .collect::<Vec<_>>()
        .join("\n");
    let decide_body = format!(
        "\"type\":\"decide\",\"program\":{},\"query\":{}",
        Json::str(program).render(),
        Json::str(query.name().to_string()).render()
    );
    let decide_body = Arc::new(decide_body);

    let start = Instant::now();
    let clients: Vec<_> = (0..connections)
        .map(|conn| {
            // Spread the remainder so every request is accounted for.
            let n = total_requests / connections
                + usize::from(conn < total_requests % connections);
            let decide_body = Arc::clone(&decide_body);
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(addr).expect("soak connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone soak stream");
                let mut reader = BufReader::with_capacity(1 << 16, stream);
                let mut pending: VecDeque<Instant> = VecDeque::with_capacity(window);
                let mut latencies_us = Vec::with_capacity(n);
                let mut shed = 0usize;
                let mut sent = 0usize;
                let mut received = 0usize;
                let mut line = String::new();
                while received < n {
                    while sent < n && pending.len() < window {
                        let id = format!("s{conn}-{sent}");
                        let request = if sent.is_multiple_of(8) {
                            format!("{{\"id\":\"{id}\",{decide_body}}}\n")
                        } else {
                            format!("{{\"id\":\"{id}\",\"type\":\"stats\"}}\n")
                        };
                        writer.write_all(request.as_bytes()).expect("soak write");
                        pending.push_back(Instant::now());
                        sent += 1;
                    }
                    line.clear();
                    let bytes = reader.read_line(&mut line).unwrap_or_else(|e| {
                        panic!("soak conn {conn} read stalled or failed after {received}/{n} responses: {e}")
                    });
                    assert!(
                        bytes > 0,
                        "soak conn {conn} dropped: EOF after {received}/{n} responses"
                    );
                    let sent_at = pending.pop_front().expect("response without request");
                    latencies_us.push(sent_at.elapsed().as_secs_f64() * 1e6);
                    let response = Json::parse(line.trim()).unwrap_or_else(|e| {
                        panic!("soak conn {conn} got untyped response {line:?}: {e:?}")
                    });
                    let kind = response
                        .get("type")
                        .and_then(Json::as_str)
                        .expect("every response carries a type");
                    assert_eq!(
                        response.get("id").and_then(Json::as_str),
                        Some(format!("s{conn}-{received}").as_str()),
                        "responses must echo ids in pipeline order"
                    );
                    if kind == "error" {
                        let code = response
                            .get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(Json::as_str)
                            .expect("typed errors carry a code")
                            .to_string();
                        assert_eq!(code, "resource_exhausted", "unexpected soak error");
                        shed += 1;
                    }
                    received += 1;
                }
                (latencies_us, shed)
            })
        })
        .collect();

    let mut latencies_us: Vec<f64> = Vec::with_capacity(total_requests);
    let mut shed = 0usize;
    for client in clients {
        let (lat, s) = client.join().expect("soak client panicked");
        latencies_us.extend(lat);
        shed += s;
    }
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    engine.request_shutdown();
    let served = server
        .join()
        .expect("soak server panicked")
        .expect("soak server I/O error");

    assert_eq!(latencies_us.len(), total_requests, "every request answered");
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let quantile = |q: f64| {
        let idx = ((q * latencies_us.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(latencies_us.len() - 1);
        latencies_us[idx]
    };
    SoakReport {
        requests: total_requests,
        shed,
        served,
        elapsed_s,
        throughput_rps: total_requests as f64 / elapsed_s,
        mean_us: latencies_us.iter().sum::<f64>() / latencies_us.len() as f64,
        p50_us: quantile(0.50),
        p95_us: quantile(0.95),
        p99_us: quantile(0.99),
    }
}

/// The parameter grid for the modular-linear-algebra experiment (LINALG):
/// `(dimension k, generators n, entry bits)`.  Tall systems (`k ≫ n`) with
/// bignum entries are the hom-count regime of Definitions 27/29 at scale;
/// the 64-bit shape is the word-size control.
pub const LINALG_SPAN_SHAPES: &[(usize, usize, usize)] = &[(24, 8, 64), (48, 12, 256)];

/// The canonical seed for a [`span_workload`] shape — shared by the JSON
/// harness, the criterion bench and the oracle test so they always measure
/// and validate the same data.
pub const fn span_workload_seed(bits: usize) -> u64 {
    0x11A6 + bits as u64
}

/// A deterministic `bits`-bit natural number (splitmix64-filled limbs).
fn big_nat(state: &mut u64, bits: usize) -> Nat {
    let mut next = || {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut n = Nat::zero();
    for _ in 0..bits.div_ceil(64) {
        n = n.shl_bits(64).add_ref(&Nat::from_u64(next()));
    }
    // Trim to `bits - 1` bits, then force the top bit so the magnitude is
    // exactly what the label promises.
    let excess = n.bit_len().saturating_sub(bits - 1);
    n.shr_bits(excess) + Nat::one().shl_bits(bits - 1)
}

/// A deterministic span workload for the LINALG experiment: `n` generator
/// vectors in ℚ^k whose entries are (signed) `bits`-bit integers —
/// hom-count-scale numbers — plus an **in-span** target planted as a small
/// integer combination of the generators (the shape the modular tier lifts
/// with single-prime reconstruction) and an **out-of-span** probe (a
/// perturbed copy; rejected by the full-column-rank mod-p certificate
/// without any bignum work).
pub fn span_workload(k: usize, n: usize, bits: usize, seed: u64) -> (Vec<QVec>, QVec, QVec) {
    assert!(n < k, "the workload wants a tall system (n < k)");
    let mut state = seed;
    let signed_entry = |state: &mut u64| {
        let nat = big_nat(state, bits);
        let negative = *state & 1 == 1;
        let int = Int::from_nat(nat);
        Rat::from_int(if negative { int.neg_ref() } else { int })
    };
    let generators: Vec<QVec> = (0..n)
        .map(|_| QVec((0..k).map(|_| signed_entry(&mut state)).collect()))
        .collect();
    // Small planted coefficients in [-4, 4] \ {0}.
    let mut in_span = QVec::zeros(k);
    for (j, g) in generators.iter().enumerate() {
        let c = Rat::from_i64((seed as i64 % 4 + j as i64) % 4 + 1);
        in_span = &in_span + &g.scale(&c);
    }
    let mut outside = in_span.clone();
    outside[0] = outside[0].add_ref(&Rat::one());
    (generators, in_span, outside)
}

/// A deterministic path-determinacy workload.
pub fn path_workload(
    query_len: usize,
    views: usize,
    derivable: bool,
    seed: u64,
) -> (Vec<PathQuery>, PathQuery) {
    let mut generator = QueryGenerator::new(3, seed);
    generator.random_path_instance(query_len, views, 2, derivable)
}

/// A deterministic random structure over a two-relation binary schema.
pub fn hom_target(domain: usize, facts: usize, seed: u64) -> Structure {
    let schema = Schema::binary(["R0", "R1"]);
    let mut generator = StructureGenerator::new(schema, seed);
    generator.random_with_facts(domain, facts)
}

/// The source pattern counted against [`hom_target`]: three disjoint 2-paths
/// (disconnected on purpose, so component factoring has something to do).
pub fn hom_source() -> Structure {
    let schema = Schema::binary(["R0", "R1"]);
    let mut s = Structure::new(schema);
    for i in 0..3u64 {
        s.add("R0", &[10 * i, 10 * i + 1]);
        s.add("R1", &[10 * i + 1, 10 * i + 2]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(
            decide_workload(4, 3, true, 7).1,
            decide_workload(4, 3, true, 7).1
        );
        assert_eq!(
            path_workload(8, 3, true, 7).1,
            path_workload(8, 3, true, 7).1
        );
        assert_eq!(hom_target(8, 20, 7), hom_target(8, 20, 7));
    }

    #[test]
    fn planted_decide_workloads_are_determined() {
        let (views, q) = decide_workload(3, 3, true, 42);
        let res = cqdet_core::decide_bag_determinacy(&views, &q).unwrap();
        assert!(res.determined);
    }

    #[test]
    fn derivable_path_workloads_are_determined() {
        let (views, q) = path_workload(8, 4, true, 42);
        assert!(cqdet_core::decide_path_determinacy(&views, &q).determined);
    }

    #[test]
    fn dedup_workload_runs_without_injective_searches() {
        // Acceptance gate of the canonical-labeling PR: on the bench
        // workload, basis construction and vector extraction are decided
        // entirely by canonical keys — not one injective-homomorphism
        // backtracking search.
        let comps = dedup_components_workload(24, 0xD15C + 24);
        let before = cqdet_structure::injective_probe_count();
        let basis = cqdet_structure::dedup_up_to_iso(comps.clone());
        let vector = cqdet_structure::multiplicities(&basis, &comps);
        assert!(vector.is_some());
        assert!(basis.len() < comps.len(), "workload repeats classes");
        assert_eq!(cqdet_structure::injective_probe_count(), before);
    }

    #[test]
    fn batch_workload_is_determined_and_hits_session_caches() {
        // The acceptance gate of the batch-engine PR: a batch of 64 tasks
        // sharing 8 views must agree with one-shot calls, and the shared
        // session must show cache hits (frozen bodies, gates) > 0.
        let tasks = batch_workload(64, BATCH_SHARED_VIEWS, 0xBA7C);
        let session = cqdet_engine::DecisionSession::with_config(cqdet_engine::SessionConfig {
            witnesses: false,
            verify: false,
            ..Default::default()
        });
        let report = session.decide_batch(&tasks);
        assert_eq!(report.records.len(), 64);
        for (record, task) in report.records.iter().zip(&tasks) {
            assert_eq!(
                record.status,
                cqdet_engine::TaskStatus::Determined,
                "{}",
                task.id
            );
            assert_eq!(record.verified, Some(true));
            let fresh = cqdet_core::decide_bag_determinacy(&task.views, &task.query).unwrap();
            assert!(fresh.determined, "session and one-shot must agree");
        }
        let stats = report.stats;
        assert!(stats.frozen_hits > 0, "shared views must hit: {stats:?}");
        assert!(stats.gate_hits > 0, "repeated gates must hit: {stats:?}");
        assert!(
            stats.span_hits > 0,
            "tasks sharing the view pool must reuse the incremental span basis: {stats:?}"
        );
        assert!(
            stats.iso_classes as usize <= 2 * BATCH_SHARED_VIEWS,
            "bodies collapse into few classes: {stats:?}"
        );
    }

    #[test]
    fn serve_request_agrees_with_direct_batch() {
        // The SERVE experiment's sanity gate: the server loop (request JSON
        // → task-file parse → Engine::submit → response JSON) must produce
        // exactly the statuses the direct decide_batch produces on the same
        // workload.
        let tasks = serve_workload(16, 0x5E4E + 16);
        let line = serve_request_line(&tasks);
        let engine = cqdet_service::Engine::new();
        let response = cqdet_service::respond_to_line(&engine, &line).expect("non-blank line");
        let wire = response.to_json();
        assert_eq!(
            wire.get("type").unwrap().as_str(),
            Some("batch"),
            "{wire:?}"
        );
        let records = wire.get("records").unwrap().as_arr().unwrap();
        assert_eq!(records.len(), tasks.len());
        let session = cqdet_engine::DecisionSession::with_config(cqdet_engine::SessionConfig {
            witnesses: false,
            verify: false,
            ..Default::default()
        });
        let direct = session.decide_batch(&tasks);
        for (wire_record, direct_record) in records.iter().zip(&direct.records) {
            assert_eq!(
                wire_record.get("task").unwrap().as_str(),
                Some(direct_record.id.as_str())
            );
            assert_eq!(
                wire_record.get("status").unwrap().as_str(),
                Some(direct_record.status.as_str())
            );
        }
    }

    #[test]
    fn span_workload_is_deterministic_and_oracle_checked() {
        for &(k, n, bits) in LINALG_SPAN_SHAPES {
            let (gens, inside, outside) = span_workload(k, n, bits, span_workload_seed(bits));
            let (gens2, inside2, _) = span_workload(k, n, bits, span_workload_seed(bits));
            assert_eq!(gens, gens2);
            assert_eq!(inside, inside2);
            assert!(gens.iter().all(|g| g.dim() == k) && gens.len() == n);
            // Entries really are `bits`-bit numbers.
            assert!(gens
                .iter()
                .all(|g| g.iter().all(|e| e.numer().magnitude().bit_len() == bits)));
            // The tiered solver answers both probes (every non-fallback
            // answer is exactly verified internally), and the in-span
            // certificate reconstructs the target.
            let alpha = cqdet_linalg::span_coefficients(&gens, &inside)
                .expect("planted combination is in the span");
            let mut acc = QVec::zeros(k);
            for (a, g) in alpha.iter().zip(&gens) {
                acc = &acc + &g.scale(a);
            }
            assert_eq!(acc, inside);
            assert!(cqdet_linalg::span_coefficients(&gens, &outside).is_none());
            // The pure-Rat oracle cross-check runs on the word-size shape
            // only: on the 256-bit shape a debug-build exact elimination
            // takes tens of seconds, which is exactly the point of the
            // modular tier.
            if bits <= 64 {
                assert!(cqdet_linalg::span_coefficients_exact(&gens, &inside).is_some());
                assert!(cqdet_linalg::span_coefficients_exact(&gens, &outside).is_none());
            }
        }
    }

    #[test]
    fn hom_source_is_disconnected() {
        assert!(!cqdet_structure::is_connected(&hom_source()));
        assert_eq!(
            cqdet_structure::connected_components(&hom_source()).len(),
            3
        );
    }
}
