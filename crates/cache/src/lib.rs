//! Bounded, sharded cache governance for the serving layer.
//!
//! Every cross-request cache of the decision pipeline — hom-count memo,
//! candidate lists, frozen bodies, containment gates, span echelons — used
//! to be a single-`Mutex` map with a wholesale clear at an entry-count cap:
//! under sustained multi-tenant traffic the server either serializes on
//! those locks or grows without bound, and a clear throws away the whole
//! working set at once.  This crate replaces that policy with one shared
//! mechanism:
//!
//! * [`ShardedCache`] — a concurrent map split into N lock shards (keyed by
//!   key hash) with **byte-accurate cost accounting**: every entry charges
//!   its true size through a caller-supplied weigher (bigint limb storage
//!   included, via the `heap_bytes()` accessors on `Nat`/`Rat`/`QVec`/
//!   `IncrementalBasis`), and a **size-capped clock eviction** (second
//!   chance) that degrades gracefully — over budget means evict and
//!   recompute, never refuse and never crash;
//! * a process-wide **memory watermark** ([`set_watermark`]): when the sum
//!   of all governed caches' bytes exceeds it, shards evict below half
//!   their budget, so one engine's burst cannot push the process into the
//!   OOM killer even when individual caps would admit it;
//! * [`snapshot`] — the crash-safe persistence envelope (magic, version,
//!   length, FNV-1a-64 checksum verified *before* parsing) behind the
//!   warm-start snapshot, plus the atomic write-temp → fsync → rename
//!   helper.  A torn, truncated, bit-flipped or version-skewed file is
//!   detected and reported as a typed error — loading never panics.
//!
//! The `cache/evict` fault-injection seam (see `cqdet-failpoint`) sits at
//! the top of every eviction step when the `failpoints` feature is on, so
//! the chaos harness can panic/delay the eviction path under live traffic
//! and assert that verdicts stay byte-identical to an unfaulted engine.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use cqdet_failpoint::fail_point;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

pub mod snapshot;

/// Sum of `bytes` across every live governed cache in the process.
static GOVERNED_BYTES: AtomicU64 = AtomicU64::new(0);

/// The process-wide memory watermark in bytes; `0` disables it.
static WATERMARK: AtomicU64 = AtomicU64::new(0);

/// Total bytes currently charged by every live [`ShardedCache`].
pub fn governed_bytes() -> u64 {
    GOVERNED_BYTES.load(Ordering::Relaxed)
}

/// Set the process-wide watermark: when [`governed_bytes`] exceeds it,
/// every cache evicts below *half* its per-shard budget until the pressure
/// clears.  `0` (the default) disables the backstop — per-cache caps alone
/// govern.  The serving layer sets this to the `--cache-bytes` total.
pub fn set_watermark(bytes: u64) {
    WATERMARK.store(bytes, Ordering::Relaxed);
}

/// Lock with poison recovery: every critical section in this module leaves
/// the shard structurally consistent even if the holder panicked (eviction
/// mutates the map and queue together under one guard), so a poisoned lock
/// carries usable data and a serving process must not cascade the panic.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Occupancy and traffic counters of one cache (or one cache *family* when
/// read from a shared [`CounterSink`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheUsage {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that missed (the caller had to compute).
    pub misses: u64,
    /// Entries removed by the byte-budget clock sweep.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged (weigher-reported, true heap cost).
    pub bytes: u64,
    /// The byte cap in force (`u64::MAX` = unbounded).
    pub cap: u64,
}

/// Aggregated counters shared by a *family* of short-lived caches (the
/// per-structure candidate memos): each cache mirrors its deltas here, and
/// subtracts its residue when dropped, so the family totals stay exact.
#[derive(Debug, Default)]
pub struct CounterSink {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub entries: AtomicU64,
    pub bytes: AtomicU64,
}

impl CounterSink {
    /// A fresh, zeroed sink (for `static` initialization).
    pub const fn new() -> CounterSink {
        CounterSink {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Snapshot the family totals; `cap` is supplied by the family owner.
    pub fn usage(&self, cap: u64) -> CacheUsage {
        CacheUsage {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            cap,
        }
    }
}

/// Where a cache reads its byte cap from: its own cell, or a `static`
/// shared by a whole family (so `set_cap` on the family governs caches that
/// already exist *and* ones created later).
enum CapSource {
    Own(AtomicUsize),
    Shared(&'static AtomicUsize),
}

impl CapSource {
    fn load(&self) -> usize {
        match self {
            CapSource::Own(c) => c.load(Ordering::Relaxed),
            CapSource::Shared(c) => c.load(Ordering::Relaxed),
        }
    }
}

struct Entry<V> {
    value: V,
    bytes: usize,
    /// The clock's second-chance bit: set on every probe hit, cleared (in
    /// lieu of eviction) the first time the sweep hand passes the entry.
    referenced: bool,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    /// The clock queue: every resident key exactly once, sweep order.
    queue: VecDeque<K>,
    bytes: usize,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            queue: VecDeque::new(),
            bytes: 0,
        }
    }
}

/// A sharded concurrent map with byte-accounted clock eviction.  See the
/// [module docs](self) for the governance model.
///
/// Concurrency: keys hash to one of `shards` independent `Mutex`es, so
/// probes on different shards never contend; all counters are atomics read
/// without locks.  Over-budget shards evict with a second-chance clock
/// sweep — recently probed entries survive one pass — and a single entry
/// larger than the whole shard budget is admitted and immediately evicted
/// (the caller keeps its own copy of the value; the cache merely declines
/// to retain it).
pub struct ShardedCache<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    router: RandomState,
    weigher: fn(&K, &V) -> usize,
    cap: CapSource,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
    sink: Option<&'static CounterSink>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache with 16 shards, `cap` total bytes (`usize::MAX` =
    /// unbounded) and `weigher` reporting each entry's true byte cost.
    pub fn new(cap: usize, weigher: fn(&K, &V) -> usize) -> ShardedCache<K, V> {
        Self::with_shards(16, cap, weigher)
    }

    /// [`ShardedCache::new`] with an explicit shard count (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(shards: usize, cap: usize, weigher: fn(&K, &V) -> usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            router: RandomState::new(),
            weigher,
            cap: CapSource::Own(AtomicUsize::new(cap)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            sink: None,
        }
    }

    /// A family member: reads its cap from a shared `static` cell and
    /// mirrors its counters into `sink`, so short-lived caches (one per
    /// structure) aggregate into one governed, observable family.
    pub fn family_member(
        shards: usize,
        cap: &'static AtomicUsize,
        sink: &'static CounterSink,
        weigher: fn(&K, &V) -> usize,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            router: RandomState::new(),
            weigher,
            cap: CapSource::Shared(cap),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            sink: Some(sink),
        }
    }

    /// Route a key (or anything it borrows as — the `Borrow` contract
    /// guarantees equal hashes) to its shard.
    fn shard_of<Q>(&self, key: &Q) -> &Mutex<Shard<K, V>>
    where
        Q: Hash + ?Sized,
    {
        let idx = self.router.hash_one(key) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// The per-shard byte budget under the current cap, halved while the
    /// process is over the global watermark.
    fn shard_budget(&self) -> usize {
        let budget = self.cap.load() / self.shards.len();
        let watermark = WATERMARK.load(Ordering::Relaxed);
        if watermark != 0 && GOVERNED_BYTES.load(Ordering::Relaxed) > watermark {
            budget / 2
        } else {
            budget
        }
    }

    fn note(&self, field: fn(&CounterSink) -> &AtomicU64, own: &AtomicU64, delta: u64) {
        own.fetch_add(delta, Ordering::Relaxed);
        if let Some(sink) = self.sink {
            field(sink).fetch_add(delta, Ordering::Relaxed);
        }
    }

    fn charge(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        GOVERNED_BYTES.fetch_add(bytes, Ordering::Relaxed);
        if let Some(sink) = self.sink {
            sink.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    fn discharge(&self, bytes: u64) {
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
        GOVERNED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
        if let Some(sink) = self.sink {
            sink.bytes.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Sweep `shard` down to `budget` bytes with the second-chance clock.
    /// Terminates: every pass either removes an entry (strictly shrinking
    /// the queue) or clears a referenced bit that only a *probe* can set
    /// again, and the map/queue pair stays consistent at every step — a
    /// panic injected at the `cache/evict` seam leaves the shard valid for
    /// poison-recovering readers.
    fn sweep(&self, shard: &mut Shard<K, V>, budget: usize) {
        while shard.bytes > budget {
            fail_point!("cache/evict");
            let Some(key) = shard.queue.pop_front() else {
                break;
            };
            // A queued key is always resident (the queue and map are
            // mutated together); a vacancy would only mean a prior panic
            // between the two updates, which the `else` tolerates.
            let Some(entry) = shard.map.get_mut(&key) else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                shard.queue.push_back(key);
                continue;
            }
            let Some(removed) = shard.map.remove(&key) else {
                continue;
            };
            shard.bytes = shard.bytes.saturating_sub(removed.bytes);
            self.discharge(removed.bytes as u64);
            self.entries.fetch_sub(1, Ordering::Relaxed);
            if let Some(sink) = self.sink {
                sink.entries.fetch_sub(1, Ordering::Relaxed);
            }
            self.note(|s| &s.evictions, &self.evictions, 1);
        }
    }

    /// Probe for `key` (borrowed form accepted, so slice-keyed probes
    /// allocate nothing), counting a hit or a miss and granting the hit its
    /// second chance against the clock sweep.
    pub fn probe<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut shard = locked(self.shard_of(key));
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.referenced = true;
                let value = entry.value.clone();
                drop(shard);
                self.note(|s| &s.hits, &self.hits, 1);
                Some(value)
            }
            None => {
                drop(shard);
                self.note(|s| &s.misses, &self.misses, 1);
                None
            }
        }
    }

    /// Insert `value` under `key` unless an entry is already resident, and
    /// return the resident value (the existing one on a race, the freshly
    /// inserted one otherwise).  Does **not** touch the hit/miss counters —
    /// pair it with [`ShardedCache::probe`], which does.  Over-budget
    /// shards are swept before the guard drops.
    pub fn insert_or_get(&self, key: K, value: V) -> V {
        let budget = self.shard_budget();
        let mut shard = locked(self.shard_of(&key));
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.referenced = true;
            return entry.value.clone();
        }
        let bytes = (self.weigher)(&key, &value);
        shard.map.insert(
            key.clone(),
            Entry {
                value: value.clone(),
                bytes,
                referenced: false,
            },
        );
        shard.queue.push_back(key);
        shard.bytes += bytes;
        self.charge(bytes as u64);
        self.entries.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = self.sink {
            sink.entries.fetch_add(1, Ordering::Relaxed);
        }
        self.sweep(&mut shard, budget);
        value
    }

    /// Re-weigh the entry under `key` (whose value grew in place — e.g. a
    /// span basis that absorbed more generators behind its own lock) and
    /// sweep if the new cost pushed the shard over budget.  A missing key
    /// (already evicted) is a no-op.
    pub fn recharge(&self, key: &K) {
        let budget = self.shard_budget();
        let mut shard = locked(self.shard_of::<K>(key));
        let Some(entry) = shard.map.get_mut(key) else {
            return;
        };
        let new_bytes = (self.weigher)(key, &entry.value);
        let old_bytes = entry.bytes;
        entry.bytes = new_bytes;
        if new_bytes >= old_bytes {
            let delta = (new_bytes - old_bytes) as u64;
            shard.bytes += new_bytes - old_bytes;
            self.charge(delta);
        } else {
            let delta = (old_bytes - new_bytes) as u64;
            shard.bytes = shard.bytes.saturating_sub(old_bytes - new_bytes);
            self.discharge(delta);
        }
        self.sweep(&mut shard, budget);
    }

    /// Remove the entry under `key`, returning its value and discharging
    /// its bytes from the shard and the global ledger.  The key's stale
    /// clock-queue slot is left behind — the sweep already tolerates
    /// vacancies (see [`ShardedCache::sweep`]) and drops it on its next
    /// pass.  Used by owners whose entries have an explicit end of life
    /// (closed sessions), unlike the purely eviction-driven value caches.
    pub fn remove(&self, key: &K) -> Option<V> {
        let mut shard = locked(self.shard_of::<K>(key));
        let removed = shard.map.remove(key)?;
        shard.bytes = shard.bytes.saturating_sub(removed.bytes);
        self.discharge(removed.bytes as u64);
        self.entries.fetch_sub(1, Ordering::Relaxed);
        if let Some(sink) = self.sink {
            sink.entries.fetch_sub(1, Ordering::Relaxed);
        }
        Some(removed.value)
    }

    /// Retarget the byte cap (live: over-budget shards are swept on their
    /// next touch; call [`ShardedCache::enforce`] to sweep immediately).
    /// No-op for family members, whose cap lives in the shared cell.
    pub fn set_cap(&self, cap: usize) {
        if let CapSource::Own(c) = &self.cap {
            c.store(cap, Ordering::Relaxed);
        }
        self.enforce();
    }

    /// Sweep every shard down to the current budget now.
    pub fn enforce(&self) {
        let budget = self.shard_budget();
        for shard in self.shards.iter() {
            self.sweep(&mut locked(shard), budget);
        }
    }

    /// Drop every entry (counters other than `entries`/`bytes` are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = locked(shard);
            let dropped_bytes = shard.bytes as u64;
            let dropped_entries = shard.map.len() as u64;
            shard.map.clear();
            shard.queue.clear();
            shard.bytes = 0;
            self.discharge(dropped_bytes);
            self.entries.fetch_sub(dropped_entries, Ordering::Relaxed);
            if let Some(sink) = self.sink {
                sink.entries.fetch_sub(dropped_entries, Ordering::Relaxed);
            }
        }
    }

    /// Visit every resident entry (used by the snapshot exporter).  Holds
    /// one shard lock at a time; `f` must not reenter the cache.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in self.shards.iter() {
            let shard = locked(shard);
            for (k, entry) in shard.map.iter() {
                f(k, &entry.value);
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheUsage {
        CacheUsage {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            cap: self.cap.load() as u64,
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<K, V> Drop for ShardedCache<K, V> {
    /// Return the residue to the global ledger (and the family sink) so
    /// short-lived caches never leak governed bytes.
    fn drop(&mut self) {
        let bytes = self.bytes.load(Ordering::Relaxed);
        let entries = self.entries.load(Ordering::Relaxed);
        GOVERNED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
        if let Some(sink) = self.sink {
            sink.bytes.fetch_sub(bytes, Ordering::Relaxed);
            sink.entries.fetch_sub(entries, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_weight(_k: &u64, _v: &Vec<u8>) -> usize {
        100
    }

    fn true_weight(_k: &u64, v: &Vec<u8>) -> usize {
        v.capacity()
    }

    #[test]
    fn probe_and_insert_round_trip() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::new(usize::MAX, fixed_weight);
        assert_eq!(c.probe(&1), None);
        c.insert_or_get(1, vec![7]);
        assert_eq!(c.probe(&1), Some(vec![7]));
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 100);
    }

    #[test]
    fn insert_or_get_keeps_the_first_value() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::new(usize::MAX, fixed_weight);
        assert_eq!(c.insert_or_get(5, vec![1]), vec![1]);
        assert_eq!(c.insert_or_get(5, vec![2]), vec![1], "first insert wins");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn byte_cap_is_enforced_by_eviction() {
        // One shard so the budget arithmetic is exact.
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::with_shards(1, 350, fixed_weight);
        for k in 0..10 {
            c.insert_or_get(k, vec![0]);
            assert!(c.bytes() <= 350, "cap violated at k={k}: {}", c.bytes());
        }
        let stats = c.stats();
        assert!(stats.evictions >= 7, "evictions ran: {stats:?}");
        assert!(stats.entries <= 3);
    }

    #[test]
    fn clock_gives_probed_entries_a_second_chance() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::with_shards(1, 350, fixed_weight);
        c.insert_or_get(1, vec![1]);
        c.insert_or_get(2, vec![2]);
        c.insert_or_get(3, vec![3]);
        // Touch 1: it survives the sweep the next insert triggers.
        assert!(c.probe(&1).is_some());
        c.insert_or_get(4, vec![4]);
        assert!(c.probe(&1).is_some(), "referenced entry survived");
        assert_eq!(c.probe(&2), None, "unreferenced entry was evicted");
    }

    #[test]
    fn over_budget_singleton_is_admitted_then_evicted() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::with_shards(1, 10, fixed_weight);
        // The value comes back to the caller even though the cache cannot
        // retain it: degrade, never refuse.
        assert_eq!(c.insert_or_get(1, vec![9]), vec![9]);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn recharge_accounts_growth_and_sweeps() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::with_shards(1, 1000, true_weight);
        c.insert_or_get(1, vec![0u8; 100]);
        c.insert_or_get(2, vec![0u8; 100]);
        assert_eq!(c.bytes(), 200);
        // Grown in place (the weigher sees the same value here, so emulate
        // growth by replacing through clear+insert on key 2 with more
        // capacity, then recharging key 1 as a no-op).
        c.recharge(&1);
        assert_eq!(c.bytes(), 200, "recharge of an unchanged entry is a no-op");
        c.recharge(&99); // missing key: no-op
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_discharges_bytes_and_survives_later_sweeps() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::with_shards(1, 1000, fixed_weight);
        let before = governed_bytes();
        for k in 0..5 {
            c.insert_or_get(k, vec![k as u8]);
        }
        assert_eq!(c.remove(&2), Some(vec![2]));
        assert_eq!(c.remove(&2), None, "double remove is a no-op");
        assert_eq!(c.len(), 4);
        assert_eq!(governed_bytes(), before + 400);
        // The stale queue slot left by the remove must not confuse the
        // sweep: force a full eviction pass over the shard.
        c.set_cap(0);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes(), 0);
        assert_eq!(governed_bytes(), before);
    }

    #[test]
    fn set_cap_retargets_live() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::with_shards(1, usize::MAX, fixed_weight);
        for k in 0..8 {
            c.insert_or_get(k, vec![0]);
        }
        assert_eq!(c.len(), 8);
        c.set_cap(250);
        assert!(c.bytes() <= 250, "live retarget sweeps: {}", c.bytes());
    }

    #[test]
    fn clear_returns_bytes_to_the_ledger() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::new(usize::MAX, fixed_weight);
        let before = governed_bytes();
        for k in 0..4 {
            c.insert_or_get(k, vec![0]);
        }
        assert_eq!(governed_bytes(), before + 400);
        c.clear();
        assert_eq!(governed_bytes(), before);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn drop_returns_residue_to_sink_and_ledger() {
        static SINK: CounterSink = CounterSink::new();
        static CAP: AtomicUsize = AtomicUsize::new(usize::MAX);
        let before = governed_bytes();
        {
            let c: ShardedCache<u64, Vec<u8>> =
                ShardedCache::family_member(2, &CAP, &SINK, fixed_weight);
            c.insert_or_get(1, vec![1]);
            c.insert_or_get(2, vec![2]);
            assert_eq!(SINK.usage(0).entries, 2);
            assert_eq!(SINK.usage(0).bytes, 200);
        }
        assert_eq!(SINK.usage(0).entries, 0, "drop subtracts the residue");
        assert_eq!(SINK.usage(0).bytes, 0);
        assert_eq!(governed_bytes(), before);
    }

    #[test]
    fn watermark_halves_budgets_under_pressure() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::with_shards(1, 1000, fixed_weight);
        for k in 0..10 {
            c.insert_or_get(k, vec![0]);
        }
        assert_eq!(c.len(), 10);
        // Pressure on: the budget drops to 500, a sweep trims to ≤ 5.
        set_watermark(1);
        c.enforce();
        assert!(c.bytes() <= 500, "watermark pressure evicts: {}", c.bytes());
        set_watermark(0);
    }

    #[test]
    fn concurrent_probes_and_inserts_stay_consistent() {
        let c: ShardedCache<u64, Vec<u8>> = ShardedCache::new(64 * 100, fixed_weight);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 131 + i) % 97;
                        if c.probe(&k).is_none() {
                            c.insert_or_get(k, vec![k as u8]);
                        }
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.hits + stats.misses, 2000);
        assert!(stats.bytes <= 64 * 100);
        assert_eq!(stats.bytes, stats.entries * 100);
    }
}
