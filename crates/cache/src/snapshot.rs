//! Crash-safe snapshot envelope: magic, version, length, checksum.
//!
//! The warm-start snapshot is a single file whose payload (serialized by
//! `cqdet-core`) is wrapped in a self-validating envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "CQDS"
//! 4       4     version (u32 LE)
//! 8       8     payload length (u64 LE)
//! 16      n     payload
//! 16+n    8     FNV-1a-64 checksum over (version bytes ‖ payload), u64 LE
//! ```
//!
//! [`open`] verifies the magic, version, declared length and checksum
//! **before** the payload is parsed, so a truncated, torn, bit-flipped or
//! version-skewed file is rejected with a typed [`SnapshotError`] and the
//! caller cold-starts — no envelope state ever reaches the cache layer.
//! [`save_atomic`] writes the envelope to a temp file in the target
//! directory, fsyncs, then renames over the destination, so a crash during
//! save leaves either the old snapshot or a rejectable partial temp file,
//! never a half-written destination.
//!
//! Payload parsing uses the bounds-checked [`Reader`]: every read is
//! length-guarded and returns [`SnapshotError::Truncated`] instead of
//! panicking on malformed interior data that happens to pass the checksum
//! (e.g. a snapshot written by a buggy future exporter).

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// File magic: identifies a cqdet snapshot.
pub const MAGIC: [u8; 4] = *b"CQDS";

/// Envelope version; bump on any payload layout change.  A mismatch is a
/// rejection (cold start), never a migration attempt.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;

/// Why a snapshot file was rejected.  Every variant maps to a cold start;
/// none of them is a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read (missing counts here too).
    Io(String),
    /// The magic bytes did not match [`MAGIC`].
    BadMagic,
    /// The envelope version differs from [`VERSION`].
    VersionMismatch { found: u32 },
    /// The file is shorter than its declared payload, or a payload read
    /// ran past the end (malformed interior data).
    Truncated,
    /// The checksum did not match: bit rot, torn write, or tampering.
    ChecksumMismatch,
    /// The payload decoded to structurally invalid data (e.g. an echelon
    /// row whose pivot is out of range).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "snapshot rejected: bad magic"),
            SnapshotError::VersionMismatch { found } => {
                write!(f, "snapshot rejected: version {found} (want {VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot rejected: truncated"),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot rejected: checksum mismatch")
            }
            SnapshotError::Malformed(what) => {
                write!(f, "snapshot rejected: malformed payload: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e.to_string())
    }
}

/// FNV-1a-64 over `data`, folded over an optional seed prefix by the
/// callers below.  Chosen for zero dependencies and full determinism; the
/// threat model is corruption detection, not adversarial collision.
fn fnv1a(mut hash: u64, data: &[u8]) -> u64 {
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn checksum(version: u32, payload: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &version.to_le_bytes()), payload)
}

/// Wrap `payload` in the envelope (magic ‖ version ‖ length ‖ payload ‖
/// checksum).
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(VERSION, payload).to_le_bytes());
    out
}

/// Validate the envelope around `file` and return the payload slice.
/// Magic, version, declared length and checksum are all checked before a
/// single payload byte is interpreted.
pub fn unseal(file: &[u8]) -> Result<&[u8], SnapshotError> {
    if file.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::Truncated);
    }
    if file[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes([file[4], file[5], file[6], file[7]]);
    if version != VERSION {
        return Err(SnapshotError::VersionMismatch { found: version });
    }
    let declared = u64::from_le_bytes([
        file[8], file[9], file[10], file[11], file[12], file[13], file[14], file[15],
    ]);
    let expected_total = (declared as usize)
        .checked_add(HEADER_LEN + CHECKSUM_LEN)
        .ok_or(SnapshotError::Truncated)?;
    if file.len() != expected_total {
        return Err(SnapshotError::Truncated);
    }
    let payload = &file[HEADER_LEN..HEADER_LEN + declared as usize];
    let stored = u64::from_le_bytes(
        file[HEADER_LEN + declared as usize..]
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?,
    );
    if checksum(version, payload) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Read `path` and return its validated payload.
pub fn open(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    let file = fs::read(path)?;
    Ok(unseal(&file)?.to_vec())
}

/// Seal `payload` and write it to `path` atomically: temp file in the same
/// directory, `sync_all`, then rename.  A crash at any point leaves either
/// the previous snapshot intact or a stray `.tmp` that [`open`] will never
/// be pointed at.
pub fn save_atomic(path: &Path, payload: &[u8]) -> Result<(), SnapshotError> {
    let sealed = seal(payload);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&sealed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Little-endian payload writer: the counterpart of [`Reader`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string (u64 length then the bytes).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian payload reader: every accessor returns
/// [`SnapshotError::Truncated`] instead of slicing past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// A `u64` that must fit a sane in-memory count; guards against a
    /// checksum-valid but hostile length field causing a huge allocation.
    pub fn count(&mut self, limit: u64) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > limit {
            return Err(SnapshotError::Malformed(format!(
                "count {n} exceeds limit {limit}"
            )));
        }
        Ok(n as usize)
    }

    /// Length-prefixed byte string written by [`Writer::bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()?;
        if len > self.buf.len() as u64 {
            return Err(SnapshotError::Truncated);
        }
        self.take(len as usize)
    }

    /// Whether the whole payload has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let payload = b"span echelons and hom counts";
        let sealed = seal(payload);
        assert_eq!(unseal(&sealed).unwrap(), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let sealed = seal(b"");
        assert_eq!(unseal(&sealed).unwrap(), b"");
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let sealed = seal(b"determinacy");
        for i in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    unseal(&bad).is_err(),
                    "flip of byte {i} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let sealed = seal(b"cold start beats a wrong answer");
        for len in 0..sealed.len() {
            assert!(
                unseal(&sealed[..len]).is_err(),
                "truncation to {len} accepted"
            );
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut sealed = seal(b"x");
        sealed[4] = 2; // version 2
        assert_eq!(
            unseal(&sealed),
            Err(SnapshotError::VersionMismatch { found: 2 })
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut sealed = seal(b"x");
        sealed[0] = b'X';
        assert_eq!(unseal(&sealed), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut sealed = seal(b"x");
        sealed.push(0);
        assert_eq!(unseal(&sealed), Err(SnapshotError::Truncated));
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(1 << 40);
        w.bytes(b"limbs");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.bytes().unwrap(), b"limbs");
        assert!(r.is_exhausted());
    }

    #[test]
    fn reader_never_overruns() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert!(r.u64().is_err());
        // A hostile length prefix larger than the buffer is Truncated,
        // not an allocation or a panic.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn count_guards_hostile_lengths() {
        let mut w = Writer::new();
        w.u64(10_000_000);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.count(1_000_000),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn save_atomic_then_open_round_trips() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cqdet-snap-test-{}.bin", std::process::id()));
        save_atomic(&path, b"warm start").unwrap();
        assert_eq!(open(&path).unwrap(), b"warm start");
        // Overwrite atomically.
        save_atomic(&path, b"second generation").unwrap();
        assert_eq!(open(&path).unwrap(), b"second generation");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = open(Path::new("/nonexistent/cqdet.snap")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }
}
