//! Property-based tests for the arbitrary-precision arithmetic, checked
//! against `u128`/`i128` reference arithmetic and against algebraic laws.

use cqdet_bigint::{Int, Nat};
use proptest::prelude::*;

fn nat_from_u128(v: u128) -> Nat {
    let hi = (v >> 64) as u64;
    let lo = v as u64;
    Nat::from_u64(hi).mul_ref(&Nat::from_u64(1u64 << 32).pow(2)) + Nat::from_u64(lo)
}

fn int_from_i128(v: i128) -> Int {
    if v >= 0 {
        Int::from_nat(nat_from_u128(v as u128))
    } else {
        Int::from_nat(nat_from_u128(v.unsigned_abs())).neg_ref()
    }
}

proptest! {
    #[test]
    fn nat_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expect = a as u128 + b as u128;
        prop_assert_eq!(Nat::from_u64(a) + Nat::from_u64(b), nat_from_u128(expect));
    }

    #[test]
    fn nat_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expect = a as u128 * b as u128;
        prop_assert_eq!(Nat::from_u64(a) * Nat::from_u64(b), nat_from_u128(expect));
    }

    #[test]
    fn nat_divrem_matches_u64(a in any::<u64>(), b in 1u64..) {
        let (q, r) = Nat::from_u64(a).divrem(&Nat::from_u64(b));
        prop_assert_eq!(q, Nat::from_u64(a / b));
        prop_assert_eq!(r, Nat::from_u64(a % b));
    }

    #[test]
    fn nat_mod_u64_matches_divrem(hi in any::<u64>(), lo in any::<u64>(), m in 1u64..) {
        // Exercise both the inline and the heap (limb-folding) paths.
        let big = nat_from_u128(((hi as u128) << 64) | lo as u128);
        let (_, r) = big.divrem(&Nat::from_u64(m));
        prop_assert_eq!(Nat::from_u64(big.mod_u64(m)), r);
        prop_assert_eq!(Nat::from_u64(lo).mod_u64(m), lo % m);
    }

    #[test]
    fn nat_divrem_reconstructs(a in any::<u128>(), b in 1u128..) {
        let an = nat_from_u128(a);
        let bn = nat_from_u128(b);
        let (q, r) = an.divrem(&bn);
        prop_assert!(r < bn);
        prop_assert_eq!(q.mul_ref(&bn) + r, an);
    }

    #[test]
    fn nat_sub_add_round_trip(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let h = nat_from_u128(hi);
        let l = nat_from_u128(lo);
        prop_assert_eq!(h.sub_ref(&l) + &l, h);
    }

    #[test]
    fn nat_gcd_divides_both(a in any::<u64>(), b in any::<u64>()) {
        let an = Nat::from_u64(a);
        let bn = Nat::from_u64(b);
        let g = an.gcd(&bn);
        if !g.is_zero() {
            prop_assert!(an.divrem(&g).1.is_zero());
            prop_assert!(bn.divrem(&g).1.is_zero());
        } else {
            prop_assert!(an.is_zero() && bn.is_zero());
        }
        // Reference value.
        prop_assert_eq!(g, Nat::from_u64(gcd_u64(a, b)));
    }

    #[test]
    fn nat_pow_matches_u128(a in 0u64..=13, e in 0u64..=30) {
        let expect = (a as u128).pow(e as u32);
        if a == 0 && e == 0 {
            prop_assert_eq!(Nat::from_u64(a).pow(e), Nat::one());
        } else {
            prop_assert_eq!(Nat::from_u64(a).pow(e), nat_from_u128(expect));
        }
    }

    #[test]
    fn nat_shift_round_trip(a in any::<u128>(), s in 0usize..200) {
        let n = nat_from_u128(a);
        prop_assert_eq!(n.shl_bits(s).shr_bits(s), n);
    }

    #[test]
    fn nat_decimal_round_trip(a in any::<u128>()) {
        let n = nat_from_u128(a);
        prop_assert_eq!(Nat::from_decimal(&n.to_decimal()).unwrap(), n.clone());
        prop_assert_eq!(n.to_decimal(), a.to_string());
    }

    #[test]
    fn nat_ordering_matches(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(nat_from_u128(a).cmp(&nat_from_u128(b)), a.cmp(&b));
    }

    #[test]
    fn int_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = a as i128 + b as i128;
        prop_assert_eq!(Int::from_i64(a) + Int::from_i64(b), int_from_i128(expect));
    }

    #[test]
    fn int_sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = a as i128 - b as i128;
        prop_assert_eq!(Int::from_i64(a) - Int::from_i64(b), int_from_i128(expect));
    }

    #[test]
    fn int_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = a as i128 * b as i128;
        prop_assert_eq!(Int::from_i64(a) * Int::from_i64(b), int_from_i128(expect));
    }

    #[test]
    fn int_divrem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = Int::from_i64(a).divrem(&Int::from_i64(b));
        prop_assert_eq!(q, int_from_i128(a as i128 / b as i128));
        prop_assert_eq!(r, int_from_i128(a as i128 % b as i128));
    }

    #[test]
    fn int_distributivity(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (ai, bi, ci) = (Int::from_i64(a), Int::from_i64(b), Int::from_i64(c));
        prop_assert_eq!(ai.mul_ref(&bi.add_ref(&ci)), ai.mul_ref(&bi) + ai.mul_ref(&ci));
    }

    #[test]
    fn int_parse_round_trip(a in any::<i128>()) {
        let v = int_from_i128(a);
        prop_assert_eq!(Int::from_decimal(&v.to_string()).unwrap(), v.clone());
        prop_assert_eq!(v.to_string(), a.to_string());
    }
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[test]
fn large_factorial_consistency() {
    // 50! computed two ways: incrementally and by divide-and-conquer products.
    let mut f = Nat::one();
    for i in 1u64..=50 {
        f = f * Nat::from_u64(i);
    }
    fn range_prod(lo: u64, hi: u64) -> Nat {
        if lo > hi {
            return Nat::one();
        }
        if lo == hi {
            return Nat::from_u64(lo);
        }
        let mid = (lo + hi) / 2;
        range_prod(lo, mid) * range_prod(mid + 1, hi)
    }
    assert_eq!(f, range_prod(1, 50));
    assert_eq!(
        f.to_decimal(),
        "30414093201713378043612608166064768844377641568960512000000000000"
    );
}
