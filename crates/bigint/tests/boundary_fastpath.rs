//! Differential tests for the small-value fast path: every `Nat`/`Int`
//! operation must agree with wide machine arithmetic (`u128`/`i128`) and with
//! the limb path across the `u64::MAX` inline/heap boundary, and the
//! rational fast path in `cqdet-linalg` is exercised from the same angle in
//! that crate's tests.

use cqdet_bigint::{Int, Nat};
use proptest::prelude::*;

/// Values straddling the inline (`≤ u64::MAX`) / heap boundary.
fn boundary_values() -> Vec<u128> {
    let mut vals = vec![
        0u128,
        1,
        2,
        (1 << 32) - 1,
        1 << 32,
        u64::MAX as u128 - 1,
        u64::MAX as u128,
        u64::MAX as u128 + 1,
        u64::MAX as u128 + 2,
        (u64::MAX as u128) * 2,
        1 << 100,
    ];
    vals.extend((0..8).map(|k| u64::MAX as u128 - 3 + k));
    vals
}

#[test]
fn add_sub_mul_agree_with_u128_at_the_boundary() {
    for &a in &boundary_values() {
        for &b in &boundary_values() {
            let (na, nb) = (Nat::from_u128(a), Nat::from_u128(b));
            if let Some(sum) = a.checked_add(b) {
                assert_eq!(na.add_ref(&nb).to_u128(), Some(sum), "{a} + {b}");
            }
            if a >= b {
                assert_eq!(na.sub_ref(&nb).to_u128(), Some(a - b), "{a} - {b}");
            }
            if let Some(prod) = a.checked_mul(b) {
                assert_eq!(na.mul_ref(&nb).to_u128(), Some(prod), "{a} * {b}");
            }
            if let Some(quot) = a.checked_div(b) {
                let (q, r) = na.divrem(&nb);
                assert_eq!(q.to_u128(), Some(quot), "{a} / {b}");
                assert_eq!(r.to_u128(), Some(a % b), "{a} % {b}");
            }
        }
    }
}

#[test]
fn gcd_and_ordering_at_the_boundary() {
    fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    for &a in &boundary_values() {
        for &b in &boundary_values() {
            let (na, nb) = (Nat::from_u128(a), Nat::from_u128(b));
            assert_eq!(na.gcd(&nb).to_u128(), Some(gcd_u128(a, b)), "gcd({a}, {b})");
            assert_eq!(na.cmp(&nb), a.cmp(&b), "cmp({a}, {b})");
        }
    }
}

#[test]
fn decimal_round_trip_at_the_boundary() {
    for &a in &boundary_values() {
        let n = Nat::from_u128(a);
        assert_eq!(n.to_decimal(), a.to_string());
        assert_eq!(Nat::from_decimal(&a.to_string()).unwrap(), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sums that cross the inline/heap boundary reconstruct exactly.
    #[test]
    fn crossing_and_returning(a in any::<u64>(), b in any::<u64>()) {
        let big = Nat::from_u64(a).add_ref(&Nat::from_u64(b)); // may spill to heap
        let back = big.sub_ref(&Nat::from_u64(b));              // always returns inline
        prop_assert_eq!(back.to_u64(), Some(a));
        let prod = Nat::from_u64(a).mul_ref(&Nat::from_u64(b));
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
        if b != 0 {
            let (q, r) = prod.divrem(&Nat::from_u64(b));
            prop_assert_eq!(q.to_u64(), Some(a));
            prop_assert!(r.is_zero());
        }
    }

    /// Int sign handling over the boundary.
    #[test]
    fn int_ops_match_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Int::from_i64(a), Int::from_i64(b));
        prop_assert_eq!(ia.add_ref(&ib).to_i128(), Some(a as i128 + b as i128));
        prop_assert_eq!(ia.sub_ref(&ib).to_i128(), Some(a as i128 - b as i128));
        prop_assert_eq!(ia.mul_ref(&ib).to_i128(), Some(a as i128 * b as i128));
        prop_assert_eq!(Int::from_i128(a as i128 * b as i128), ia.mul_ref(&ib));
    }

    /// The assign operators take the in-place fast path but must match the
    /// allocating reference operations everywhere, including at overflow.
    #[test]
    fn assign_ops_match(a in any::<u64>(), b in any::<u64>()) {
        let (na, nb) = (Nat::from_u64(a), Nat::from_u64(b));
        let mut x = na.clone();
        x += &nb;
        prop_assert_eq!(x, na.add_ref(&nb));
        let mut y = na.clone();
        y *= &nb;
        prop_assert_eq!(y, na.mul_ref(&nb));
        let (hi, lo) = if na >= nb { (na.clone(), nb.clone()) } else { (nb.clone(), na.clone()) };
        let mut z = hi.clone();
        z -= &lo;
        prop_assert_eq!(z, hi.sub_ref(&lo));
    }
}
