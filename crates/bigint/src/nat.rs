//! Unsigned arbitrary-precision natural numbers.
//!
//! Values that fit in a machine word — the overwhelming majority of the
//! homomorphism counts and rational components the decision procedure
//! manipulates — are stored inline as a `u64` and computed with single
//! machine instructions (widening through `u128` where needed); only values
//! above `u64::MAX` spill to a heap-allocated little-endian limb vector.
//! The representation is canonical (anything that fits inline *is* inline),
//! so derived equality and hashing are exact.

use crate::ParseBigIntError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

const LIMB_BITS: u32 = 32;
const LIMB_BASE: u64 = 1 << LIMB_BITS;

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// The value itself; the fast path.
    Inline(u64),
    /// Little-endian limbs; invariant: `limbs.len() >= 3` and
    /// `limbs.last() != Some(&0)` (so the value exceeds `u64::MAX`).
    Heap(Vec<u32>),
}

/// An arbitrary-precision natural number (including zero).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Nat {
    repr: Repr,
}

impl Default for Nat {
    fn default() -> Self {
        Nat::zero()
    }
}

/// Build the canonical representation from raw limbs.
fn from_limbs(mut limbs: Vec<u32>) -> Nat {
    while let Some(&0) = limbs.last() {
        limbs.pop();
    }
    match limbs.len() {
        0 => Nat::zero(),
        1 => Nat::from_u64(limbs[0] as u64),
        2 => Nat::from_u64(limbs[0] as u64 | ((limbs[1] as u64) << 32)),
        _ => Nat {
            repr: Repr::Heap(limbs),
        },
    }
}

/// View a `u64` as (at most two) limbs in a caller-provided buffer.
#[inline]
fn inline_limbs(v: u64, buf: &mut [u32; 2]) -> &[u32] {
    buf[0] = (v & 0xFFFF_FFFF) as u32;
    buf[1] = (v >> 32) as u32;
    let n = if v == 0 {
        0
    } else if v >> 32 == 0 {
        1
    } else {
        2
    };
    &buf[..n]
}

// ---- slice kernels (shared by the heap paths) ------------------------------

fn add_slices(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(longer.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in longer.iter().enumerate() {
        let x = limb as u64;
        let y = *shorter.get(i).unwrap_or(&0) as u64;
        let sum = x + y + carry;
        out.push((sum & 0xFFFF_FFFF) as u32);
        carry = sum >> 32;
    }
    if carry > 0 {
        out.push(carry as u32);
    }
    out
}

/// `a - b`; the caller guarantees `a >= b`.
fn sub_slices(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for (i, &limb) in a.iter().enumerate() {
        let x = limb as i64;
        let y = *b.get(i).unwrap_or(&0) as i64;
        let mut diff = x - y - borrow;
        if diff < 0 {
            diff += LIMB_BASE as i64;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.push(diff as u32);
    }
    debug_assert_eq!(borrow, 0);
    out
}

fn mul_slices(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        let mut carry = 0u64;
        let x = x as u64;
        for (j, &y) in b.iter().enumerate() {
            let idx = i + j;
            let cur = out[idx] as u64 + x * (y as u64) + carry;
            out[idx] = (cur & 0xFFFF_FFFF) as u32;
            carry = cur >> 32;
        }
        let mut idx = i + b.len();
        while carry > 0 {
            let cur = out[idx] as u64 + carry;
            out[idx] = (cur & 0xFFFF_FFFF) as u32;
            carry = cur >> 32;
            idx += 1;
        }
    }
    out
}

fn cmp_slices(a: &[u32], b: &[u32]) -> Ordering {
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for i in (0..a.len()).rev() {
                match a[i].cmp(&b[i]) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            Ordering::Equal
        }
        ord => ord,
    }
}

impl Nat {
    /// The natural number zero.
    pub fn zero() -> Self {
        Nat {
            repr: Repr::Inline(0),
        }
    }

    /// The natural number one.
    pub fn one() -> Self {
        Nat {
            repr: Repr::Inline(1),
        }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Nat {
            repr: Repr::Inline(v),
        }
    }

    /// Construct from a `usize`.
    pub fn from_usize(v: usize) -> Self {
        Self::from_u64(v as u64)
    }

    /// Construct from little-endian 32-bit limbs (canonicalizing: trailing
    /// zero limbs are stripped and word-sized values go inline).  The
    /// inverse of [`Nat::to_limbs`]; used by the warm-start snapshot codec.
    pub fn from_limbs(limbs: Vec<u32>) -> Self {
        from_limbs(limbs)
    }

    /// The value as little-endian 32-bit limbs (empty for zero).  The
    /// inverse of [`Nat::from_limbs`].
    pub fn to_limbs(&self) -> Vec<u32> {
        match &self.repr {
            Repr::Inline(v) => {
                let mut buf = [0u32; 2];
                inline_limbs(*v, &mut buf).to_vec()
            }
            Repr::Heap(l) => l.clone(),
        }
    }

    /// Bytes of heap storage owned by this value (zero for the inline
    /// fast path).  Feeds the byte-accurate cost accounting of the
    /// governed caches: a hom count that spilled to limbs charges its
    /// true footprint, not a flat struct size.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Inline(_) => 0,
            Repr::Heap(l) => l.capacity() * std::mem::size_of::<u32>(),
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        if v <= u64::MAX as u128 {
            return Nat::from_u64(v as u64);
        }
        from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }

    /// Whether this number is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Inline(0))
    }

    /// Whether this number is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Inline(1))
    }

    /// Try to convert to `u64`; returns `None` if the value does not fit.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        match self.repr {
            Repr::Inline(v) => Some(v),
            Repr::Heap(_) => None,
        }
    }

    /// Try to convert to `u128`; returns `None` if the value does not fit.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Inline(v) => Some(*v as u128),
            Repr::Heap(l) if l.len() <= 4 => {
                let mut v = 0u128;
                for (i, &limb) in l.iter().enumerate() {
                    v |= (limb as u128) << (32 * i);
                }
                Some(v)
            }
            Repr::Heap(_) => None,
        }
    }

    /// Try to convert to `usize`; returns `None` if the value does not fit.
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Inline(v) => (64 - v.leading_zeros()) as usize,
            Repr::Heap(l) => {
                // The heap repr is never empty, so an empty slice degrades to
                // a zero top limb rather than a panic path in the hot loop.
                let top = l.last().copied().unwrap_or(0);
                (l.len() - 1) * LIMB_BITS as usize + (32 - top.leading_zeros() as usize)
            }
        }
    }

    /// The value of the `i`-th bit (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        match &self.repr {
            Repr::Inline(v) => i < 64 && (v >> i) & 1 == 1,
            Repr::Heap(l) => {
                let limb = i / LIMB_BITS as usize;
                let off = i % LIMB_BITS as usize;
                match l.get(limb) {
                    None => false,
                    Some(&x) => (x >> off) & 1 == 1,
                }
            }
        }
    }

    /// Whether the value is even.
    pub fn is_even(&self) -> bool {
        !self.bit(0)
    }

    /// Addition, allocating the result (inline values stay allocation-free).
    pub fn add_ref(&self, other: &Nat) -> Nat {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            return match a.checked_add(*b) {
                Some(s) => Nat::from_u64(s),
                None => Nat::from_u128(*a as u128 + *b as u128),
            };
        }
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        from_limbs(add_slices(
            self.limb_slice(&mut ba),
            other.limb_slice(&mut bb),
        ))
    }

    /// Subtraction `self - other`; panics if `other > self`.
    pub fn sub_ref(&self, other: &Nat) -> Nat {
        assert!(
            self >= other,
            "Nat subtraction underflow: cannot subtract a larger natural number"
        );
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            return Nat::from_u64(a - b);
        }
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        from_limbs(sub_slices(
            self.limb_slice(&mut ba),
            other.limb_slice(&mut bb),
        ))
    }

    /// Checked subtraction: `None` if `other > self`.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self >= other {
            Some(self.sub_ref(other))
        } else {
            None
        }
    }

    /// Multiplication, allocating the result (inline×inline runs in `u128`).
    pub fn mul_ref(&self, other: &Nat) -> Nat {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            return Nat::from_u128(*a as u128 * *b as u128);
        }
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let (mut ba, mut bb) = ([0u32; 2], [0u32; 2]);
        from_limbs(mul_slices(
            self.limb_slice(&mut ba),
            other.limb_slice(&mut bb),
        ))
    }

    /// Multiply by a single `u32`.
    pub fn mul_u32(&self, m: u32) -> Nat {
        if let Repr::Inline(v) = self.repr {
            return Nat::from_u128(v as u128 * m as u128);
        }
        if m == 0 {
            return Nat::zero();
        }
        let mut buf = [0u32; 2];
        let limbs = self.limb_slice(&mut buf);
        let mut out = Vec::with_capacity(limbs.len() + 1);
        let m = m as u64;
        let mut carry = 0u64;
        for &a in limbs {
            let cur = (a as u64) * m + carry;
            out.push((cur & 0xFFFF_FFFF) as u32);
            carry = cur >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        from_limbs(out)
    }

    /// The limbs of this value, inline values via the scratch buffer.
    #[inline]
    fn limb_slice<'a>(&'a self, buf: &'a mut [u32; 2]) -> &'a [u32] {
        match &self.repr {
            Repr::Inline(v) => inline_limbs(*v, buf),
            Repr::Heap(l) => l.as_slice(),
        }
    }

    /// Number of limbs in the canonical limb representation.
    fn limb_len(&self) -> usize {
        match &self.repr {
            Repr::Inline(0) => 0,
            Repr::Inline(v) if v >> 32 == 0 => 1,
            Repr::Inline(_) => 2,
            Repr::Heap(l) => l.len(),
        }
    }

    /// Shift left by `bits` bits.
    pub fn shl_bits(&self, bits: usize) -> Nat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        if bits <= 64 {
            if let Repr::Inline(v) = self.repr {
                return Nat::from_u128((v as u128) << bits);
            }
        }
        let mut buf = [0u32; 2];
        let limbs = self.limb_slice(&mut buf);
        let limb_shift = bits / LIMB_BITS as usize;
        let bit_shift = (bits % LIMB_BITS as usize) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(limbs);
        } else {
            let mut carry = 0u32;
            for &l in limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        from_limbs(out)
    }

    /// Shift right by `bits` bits (floor division by `2^bits`).
    pub fn shr_bits(&self, bits: usize) -> Nat {
        if let Repr::Inline(v) = self.repr {
            return if bits >= 64 {
                Nat::zero()
            } else {
                Nat::from_u64(v >> bits)
            };
        }
        let mut buf = [0u32; 2];
        let limbs = self.limb_slice(&mut buf);
        let limb_shift = bits / LIMB_BITS as usize;
        if limb_shift >= limbs.len() {
            return Nat::zero();
        }
        let bit_shift = (bits % LIMB_BITS as usize) as u32;
        let src = &limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (LIMB_BITS - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        from_limbs(out)
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero Nat");
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &divisor.repr) {
            return (Nat::from_u64(a / b), Nat::from_u64(a % b));
        }
        if self < divisor {
            return (Nat::zero(), self.clone());
        }
        if divisor.limb_len() == 1 {
            if let Some(d) = divisor.to_u64() {
                let (q, r) = self.divrem_u32(d as u32);
                return (q, Nat::from_u64(r as u64));
            }
        }
        // Shift–subtract long division on the bit level.  Quadratic, but the
        // operands in this workspace stay in the low thousands of bits.
        let n = self.bit_len();
        let d = divisor.bit_len();
        let mut rem = Nat::zero();
        let mut quot_limbs = vec![0u32; self.limb_len()];
        let mut i = n;
        // Start remainder with the top (d-1) bits of self to skip pointless steps.
        if n >= d {
            rem = self.shr_bits(n - (d - 1));
            i = n - (d - 1);
        }
        while i > 0 {
            i -= 1;
            // rem = rem * 2 + bit_i(self)
            rem = rem.shl_bits(1);
            if self.bit(i) {
                rem = rem.add_ref(&Nat::one());
            }
            if &rem >= divisor {
                rem = rem.sub_ref(divisor);
                quot_limbs[i / 32] |= 1 << (i % 32);
            }
        }
        (from_limbs(quot_limbs), rem)
    }

    /// Division with remainder by a single `u32` divisor.
    pub fn divrem_u32(&self, divisor: u32) -> (Nat, u32) {
        assert!(divisor != 0, "division by zero");
        if let Repr::Inline(v) = self.repr {
            return (
                Nat::from_u64(v / divisor as u64),
                (v % divisor as u64) as u32,
            );
        }
        let mut buf = [0u32; 2];
        let limbs = self.limb_slice(&mut buf);
        let d = divisor as u64;
        let mut out = vec![0u32; limbs.len()];
        let mut rem = 0u64;
        for i in (0..limbs.len()).rev() {
            let cur = (rem << 32) | limbs[i] as u64;
            out[i] = (cur / d) as u32;
            rem = cur % d;
        }
        (from_limbs(out), rem as u32)
    }

    /// The remainder `self mod m` for a machine-word modulus, without
    /// allocating a quotient.  Folds the limbs most-significant-first:
    /// `acc ← (acc·2³² + limb) mod m`, which fits `u128` for any `m ≤ u64`.
    ///
    /// This is the reduction the modular linear-algebra tier
    /// (`cqdet-linalg`) uses to map exact rationals into `ℤ/p` — it runs
    /// once per matrix entry, so it must not pay the full `divrem` long
    /// division.  Panics if `m` is zero.
    pub fn mod_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "modulus must be non-zero");
        if let Repr::Inline(v) = self.repr {
            return v % m;
        }
        let mut buf = [0u32; 2];
        let limbs = self.limb_slice(&mut buf);
        let mut acc: u128 = 0;
        for &limb in limbs.iter().rev() {
            acc = ((acc << 32) | limb as u128) % m as u128;
        }
        acc as u64
    }

    /// [`Nat::mod_u64`] against two moduli in one limb walk: both
    /// accumulators fold the same most-significant-first pass, so the limb
    /// storage is traversed (and cache-faulted) once instead of twice.
    ///
    /// This feeds the interleaved dual-prime reduction of the modular
    /// linear-algebra tier, which needs every matrix entry's residue for a
    /// *pair* of solver primes.  Panics if either modulus is zero.
    pub fn mod_pair_u64(&self, m: [u64; 2]) -> [u64; 2] {
        assert!(m[0] != 0 && m[1] != 0, "modulus must be non-zero");
        if let Repr::Inline(v) = self.repr {
            return [v % m[0], v % m[1]];
        }
        let mut buf = [0u32; 2];
        let limbs = self.limb_slice(&mut buf);
        let (mut a0, mut a1): (u128, u128) = (0, 0);
        for &limb in limbs.iter().rev() {
            a0 = ((a0 << 32) | limb as u128) % m[0] as u128;
            a1 = ((a1 << 32) | limb as u128) % m[1] as u128;
        }
        [a0 as u64, a1 as u64]
    }

    /// Exponentiation by squaring. `0^0 = 1` (the paper's convention).
    pub fn pow(&self, mut exp: u64) -> Nat {
        let mut base = self.clone();
        let mut result = Nat::one();
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        result
    }

    /// Greatest common divisor (`gcd(0, x) = x`).
    pub fn gcd(&self, other: &Nat) -> Nat {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            return Nat::from_u64(gcd_u64(*a, *b));
        }
        // Binary GCD on the general representation.
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Count common factors of two.
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr_bits(1);
            b = b.shr_bits(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr_bits(1);
        }
        loop {
            // Drop to the machine-word fast path as soon as both fit.
            if let (Some(x), Some(y)) = (a.to_u64(), b.to_u64()) {
                return Nat::from_u64(gcd_u64(x, y)).shl_bits(shift);
            }
            while b.is_even() {
                b = b.shr_bits(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub_ref(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl_bits(shift)
    }

    /// Least common multiple. `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let g = self.gcd(other);
        self.divrem(&g).0.mul_ref(other)
    }

    /// Render in decimal.
    pub fn to_decimal(&self) -> String {
        if let Repr::Inline(v) = self.repr {
            return v.to_string();
        }
        let mut chunks: Vec<u32> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        s
    }

    /// Parse from a decimal string of ASCII digits.
    pub fn from_decimal(s: &str) -> Result<Nat, ParseBigIntError> {
        if s.is_empty() {
            return Err(ParseBigIntError::empty());
        }
        let mut n = Nat::zero();
        let mut any_digit = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or_else(|| ParseBigIntError::invalid(c))?;
            any_digit = true;
            n = n.mul_u32(10).add_ref(&Nat::from_u64(d as u64));
        }
        if !any_digit {
            return Err(ParseBigIntError::empty());
        }
        Ok(n)
    }
}

/// Euclidean GCD on machine words (`gcd(0, x) = x`).
#[inline]
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({})", self.to_decimal())
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a.cmp(b),
            // Canonical invariant: a heap value always exceeds u64::MAX.
            (Repr::Inline(_), Repr::Heap(_)) => Ordering::Less,
            (Repr::Heap(_), Repr::Inline(_)) => Ordering::Greater,
            (Repr::Heap(a), Repr::Heap(b)) => cmp_slices(a, b),
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from_u64(v as u64)
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_u64(v)
    }
}

impl From<usize> for Nat {
    fn from(v: usize) -> Self {
        Nat::from_usize(v)
    }
}

impl FromStr for Nat {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Nat::from_decimal(s)
    }
}

macro_rules! forward_binop_nat {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                self.$impl_method(&rhs)
            }
        }
        impl $trait<&Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                self.$impl_method(rhs)
            }
        }
        impl $trait<&Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                self.$impl_method(rhs)
            }
        }
        impl $trait<Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                self.$impl_method(&rhs)
            }
        }
    };
}

forward_binop_nat!(Add, add, add_ref);
forward_binop_nat!(Sub, sub, sub_ref);
forward_binop_nat!(Mul, mul, mul_ref);

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        // In-place fast path: no allocation, no clone.
        if let (Repr::Inline(a), Repr::Inline(b)) = (&mut self.repr, &rhs.repr) {
            if let Some(s) = a.checked_add(*b) {
                *a = s;
                return;
            }
        }
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&mut self.repr, &rhs.repr) {
            assert!(
                *a >= *b,
                "Nat subtraction underflow: cannot subtract a larger natural number"
            );
            *a -= *b;
            return;
        }
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&mut self.repr, &rhs.repr) {
            if let Some(p) = a.checked_mul(*b) {
                *a = p;
                return;
            }
        }
        *self = self.mul_ref(rhs);
    }
}

impl Rem<&Nat> for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.divrem(rhs).1
    }
}

impl Shl<usize> for &Nat {
    type Output = Nat;
    fn shl(self, bits: usize) -> Nat {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Nat {
    type Output = Nat;
    fn shr(self, bits: usize) -> Nat {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Nat {
        Nat::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert!(!Nat::one().is_zero());
        assert_eq!(Nat::zero().to_u64(), Some(0));
        assert_eq!(Nat::one().to_u64(), Some(1));
        assert_eq!(Nat::default(), Nat::zero());
    }

    #[test]
    fn add_small() {
        assert_eq!(n(2) + n(3), n(5));
        assert_eq!(n(0) + n(7), n(7));
        assert_eq!(n(u32::MAX as u64) + n(1), n(1 << 32));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = n(u64::MAX);
        let b = n(1);
        let sum = a + b;
        assert_eq!(sum.to_decimal(), "18446744073709551616");
        assert_eq!(sum.bit_len(), 65);
    }

    #[test]
    fn sub_small() {
        assert_eq!(n(10) - n(3), n(7));
        assert_eq!(n(10) - n(10), Nat::zero());
        assert_eq!(n(1 << 32) - n(1), n(u32::MAX as u64));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(3) - n(5);
    }

    #[test]
    fn checked_sub_none_on_underflow() {
        assert_eq!(n(3).checked_sub(&n(5)), None);
        assert_eq!(n(5).checked_sub(&n(3)), Some(n(2)));
    }

    #[test]
    fn mod_pair_matches_mod_u64() {
        let big = (n(u64::MAX) + n(1)).pow(3) + n(987_654_321);
        let moduli = [(1u64 << 62) - 57, 1_000_003, 2, u64::MAX];
        for v in [Nat::zero(), Nat::one(), n(u64::MAX), big] {
            for &m0 in &moduli {
                for &m1 in &moduli {
                    assert_eq!(
                        v.mod_pair_u64([m0, m1]),
                        [v.mod_u64(m0), v.mod_u64(m1)],
                        "mod_pair {m0} {m1}"
                    );
                }
            }
        }
    }

    #[test]
    fn mul_small() {
        assert_eq!(n(6) * n(7), n(42));
        assert_eq!(n(0) * n(7), Nat::zero());
        assert_eq!(
            n(u32::MAX as u64) * n(u32::MAX as u64),
            n(18446744065119617025)
        );
    }

    #[test]
    fn mul_large() {
        // (2^64)^2 = 2^128
        let a = n(u64::MAX) + n(1);
        let sq = a.mul_ref(&a);
        assert_eq!(sq.to_decimal(), "340282366920938463463374607431768211456");
        assert_eq!(sq.bit_len(), 129);
    }

    #[test]
    fn divrem_basic() {
        let (q, r) = n(100).divrem(&n(7));
        assert_eq!(q, n(14));
        assert_eq!(r, n(2));
        let (q, r) = n(5).divrem(&n(10));
        assert_eq!(q, Nat::zero());
        assert_eq!(r, n(5));
    }

    #[test]
    fn divrem_multi_limb() {
        let a = Nat::from_decimal("340282366920938463463374607431768211457").unwrap();
        let b = Nat::from_decimal("18446744073709551616").unwrap();
        let (q, r) = a.divrem(&b);
        assert_eq!(q, b);
        assert_eq!(r, Nat::one());
        // Recompose.
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).divrem(&Nat::zero());
    }

    #[test]
    fn pow_and_zero_conventions() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(0).pow(0), Nat::one(), "the paper's 0^0 = 1 convention");
        assert_eq!(n(0).pow(5), Nat::zero());
        assert_eq!(n(7).pow(0), Nat::one());
        assert_eq!(n(10).pow(20).to_decimal(), "100000000000000000000");
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(17).gcd(&n(13)), n(1));
        assert_eq!(n(12).lcm(&n(18)), n(36));
        assert_eq!(n(0).lcm(&n(5)), Nat::zero());
        let a = n(2).pow(40) * n(3).pow(5);
        let b = n(2).pow(20) * n(5).pow(3);
        assert_eq!(a.gcd(&b), n(2).pow(20));
    }

    #[test]
    fn gcd_across_the_inline_boundary() {
        // 2^80·3 and 2^20·9 — one operand heap, one inline.
        let a = n(3).shl_bits(80);
        let b = n(9).shl_bits(20);
        assert_eq!(a.gcd(&b), n(3).shl_bits(20));
        // Both heap.
        let c = n(6).shl_bits(100);
        let d = n(4).shl_bits(90);
        assert_eq!(c.gcd(&d), n(2).shl_bits(91));
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl_bits(40), n(1 << 40));
        assert_eq!(n(1 << 40).shr_bits(40), n(1));
        assert_eq!(n(0b1011).shr_bits(2), n(0b10));
        assert_eq!(Nat::zero().shl_bits(100), Nat::zero());
        assert_eq!(n(5).shr_bits(100), Nat::zero());
        // Shifts across the inline/heap boundary round-trip.
        let big = n(0xDEAD_BEEF_u64).shl_bits(77);
        assert_eq!(big.shr_bits(77), n(0xDEAD_BEEF_u64));
        assert!(big.to_u64().is_none());
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
            "340282366920938463463374607431768211456",
        ] {
            let v = Nat::from_decimal(s).unwrap();
            assert_eq!(v.to_decimal(), s);
        }
    }

    #[test]
    fn decimal_parse_errors() {
        assert!(Nat::from_decimal("").is_err());
        assert!(Nat::from_decimal("12a").is_err());
        assert!("x".parse::<Nat>().is_err());
        assert_eq!("1_000".parse::<Nat>().unwrap(), n(1000));
        assert!(
            Nat::from_decimal("_").is_err(),
            "separators alone are not a number"
        );
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(5));
        assert!(n(1 << 40) > n(u32::MAX as u64));
        let a = Nat::from_decimal("123456789012345678901234567890").unwrap();
        let b = Nat::from_decimal("123456789012345678901234567891").unwrap();
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        // Inline vs heap ordering via the canonical invariant.
        assert!(n(u64::MAX) < a);
        assert!(a > n(u64::MAX));
    }

    #[test]
    fn bits() {
        assert_eq!(Nat::zero().bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(255).bit_len(), 8);
        assert_eq!(n(256).bit_len(), 9);
        assert!(n(4).is_even());
        assert!(!n(5).is_even());
        assert!(n(5).bit(0) && !n(5).bit(1) && n(5).bit(2));
    }

    #[test]
    fn mul_u32_and_divrem_u32() {
        let a = Nat::from_decimal("123456789012345678901234567890").unwrap();
        let b = a.mul_u32(1000);
        assert_eq!(b.to_decimal(), "123456789012345678901234567890000");
        let (q, r) = b.divrem_u32(1000);
        assert_eq!(q, a);
        assert_eq!(r, 0);
    }

    #[test]
    fn canonical_representation_at_the_boundary() {
        // u64::MAX is inline; u64::MAX + 1 is heap; subtracting brings it back
        // to an inline value that must compare/hash equal to a fresh inline.
        let max = n(u64::MAX);
        assert_eq!(max.to_u64(), Some(u64::MAX));
        let over = max.add_ref(&Nat::one());
        assert_eq!(over.to_u64(), None);
        let back = over.sub_ref(&Nat::one());
        assert_eq!(back, max);
        assert_eq!(back.to_u64(), Some(u64::MAX));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |x: &Nat| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&back), h(&max));
    }

    #[test]
    fn assign_ops_match_ref_ops() {
        let mut a = n(10);
        a += &n(5);
        assert_eq!(a, n(15));
        a -= &n(6);
        assert_eq!(a, n(9));
        a *= &n(3);
        assert_eq!(a, n(27));
        // Across the overflow boundary.
        let mut b = n(u64::MAX);
        b += &n(u64::MAX);
        assert_eq!(b, n(u64::MAX).add_ref(&n(u64::MAX)));
        let mut c = n(u64::MAX);
        c *= &n(u64::MAX);
        assert_eq!(c, n(u64::MAX).mul_ref(&n(u64::MAX)));
        let mut d = c.clone();
        d -= &n(1);
        assert_eq!(d, c.sub_ref(&n(1)));
    }

    #[test]
    fn u128_round_trip() {
        for v in [0u128, 1, u64::MAX as u128, u64::MAX as u128 + 1, u128::MAX] {
            assert_eq!(Nat::from_u128(v).to_u128(), Some(v));
        }
        let too_big = Nat::from_u128(u128::MAX).mul_ref(&Nat::from_u64(2));
        assert_eq!(too_big.to_u128(), None);
    }
}
