//! Unsigned arbitrary-precision natural numbers.

use crate::ParseBigIntError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

const LIMB_BITS: u32 = 32;
const LIMB_BASE: u64 = 1 << LIMB_BITS;

/// An arbitrary-precision natural number (including zero).
///
/// Internally a little-endian vector of 32-bit limbs with no trailing zero
/// limbs (zero is represented by an empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u32>,
}

impl Nat {
    /// The natural number zero.
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The natural number one.
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let lo = (v & 0xFFFF_FFFF) as u32;
        let hi = (v >> 32) as u32;
        let mut n = Nat {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Construct from a `usize`.
    pub fn from_usize(v: usize) -> Self {
        Self::from_u64(v as u64)
    }

    /// Whether this number is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this number is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Try to convert to `u64`; returns `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Try to convert to `usize`; returns `None` if the value does not fit.
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * LIMB_BITS as usize + (32 - top.leading_zeros() as usize),
        }
    }

    /// The value of the `i`-th bit (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS as usize;
        let off = i % LIMB_BITS as usize;
        match self.limbs.get(limb) {
            None => false,
            Some(&l) => (l >> off) & 1 == 1,
        }
    }

    /// Whether the value is even.
    pub fn is_even(&self) -> bool {
        !self.bit(0)
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// Addition, allocating the result.
    pub fn add_ref(&self, other: &Nat) -> Nat {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for i in 0..longer.len() {
            let a = longer[i] as u64;
            let b = *shorter.get(i).unwrap_or(&0) as u64;
            let sum = a + b + carry;
            out.push((sum & 0xFFFF_FFFF) as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction `self - other`; panics if `other > self`.
    pub fn sub_ref(&self, other: &Nat) -> Nat {
        assert!(
            self >= other,
            "Nat subtraction underflow: cannot subtract a larger natural number"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += LIMB_BASE as i64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(diff as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Checked subtraction: `None` if `other > self`.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self >= other {
            Some(self.sub_ref(other))
        } else {
            None
        }
    }

    /// Multiplication, allocating the result (schoolbook algorithm).
    pub fn mul_ref(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            let a = a as u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = out[idx] as u64 + a * (b as u64) + carry;
                out[idx] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = out[idx] as u64 + carry;
                out[idx] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Multiply by a single `u32`.
    pub fn mul_u32(&self, m: u32) -> Nat {
        if m == 0 || self.is_zero() {
            return Nat::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let m = m as u64;
        let mut carry = 0u64;
        for &a in &self.limbs {
            let cur = (a as u64) * m + carry;
            out.push((cur & 0xFFFF_FFFF) as u32);
            carry = cur >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Shift left by `bits` bits.
    pub fn shl_bits(&self, bits: usize) -> Nat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / LIMB_BITS as usize;
        let bit_shift = (bits % LIMB_BITS as usize) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Shift right by `bits` bits (floor division by `2^bits`).
    pub fn shr_bits(&self, bits: usize) -> Nat {
        let limb_shift = bits / LIMB_BITS as usize;
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let bit_shift = (bits % LIMB_BITS as usize) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (LIMB_BITS - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero Nat");
        if self < divisor {
            return (Nat::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_u32(divisor.limbs[0]);
            return (q, Nat::from_u64(r as u64));
        }
        // Shift–subtract long division on the bit level.  Quadratic, but the
        // operands in this workspace stay in the low thousands of bits.
        let n = self.bit_len();
        let d = divisor.bit_len();
        let mut rem = Nat::zero();
        let mut quot_limbs = vec![0u32; self.limbs.len()];
        let mut i = n;
        // Start remainder with the top (d-1) bits of self to skip pointless steps.
        if n >= d {
            rem = self.shr_bits(n - (d - 1));
            i = n - (d - 1);
        }
        while i > 0 {
            i -= 1;
            // rem = rem * 2 + bit_i(self)
            rem = rem.shl_bits(1);
            if self.bit(i) {
                rem = rem.add_ref(&Nat::one());
            }
            if &rem >= divisor {
                rem = rem.sub_ref(divisor);
                quot_limbs[i / 32] |= 1 << (i % 32);
            }
        }
        let mut q = Nat { limbs: quot_limbs };
        q.normalize();
        (q, rem)
    }

    /// Division with remainder by a single `u32` divisor.
    pub fn divrem_u32(&self, divisor: u32) -> (Nat, u32) {
        assert!(divisor != 0, "division by zero");
        let d = divisor as u64;
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            out[i] = (cur / d) as u32;
            rem = cur % d;
        }
        let mut q = Nat { limbs: out };
        q.normalize();
        (q, rem as u32)
    }

    /// Exponentiation by squaring. `0^0 = 1` (the paper's convention).
    pub fn pow(&self, mut exp: u64) -> Nat {
        let mut base = self.clone();
        let mut result = Nat::one();
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD; `gcd(0, x) = x`).
    pub fn gcd(&self, other: &Nat) -> Nat {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Count common factors of two.
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr_bits(1);
            b = b.shr_bits(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr_bits(1);
        }
        loop {
            while b.is_even() {
                b = b.shr_bits(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub_ref(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl_bits(shift)
    }

    /// Least common multiple. `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let g = self.gcd(other);
        self.divrem(&g).0.mul_ref(other)
    }

    /// Render in decimal.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks: Vec<u32> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        s
    }

    /// Parse from a decimal string of ASCII digits.
    pub fn from_decimal(s: &str) -> Result<Nat, ParseBigIntError> {
        if s.is_empty() {
            return Err(ParseBigIntError::empty());
        }
        let mut n = Nat::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or_else(|| ParseBigIntError::invalid(c))?;
            n = n.mul_u32(10).add_ref(&Nat::from_u64(d as u64));
        }
        Ok(n)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({})", self.to_decimal())
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from_u64(v as u64)
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_u64(v)
    }
}

impl From<usize> for Nat {
    fn from(v: usize) -> Self {
        Nat::from_usize(v)
    }
}

impl FromStr for Nat {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Nat::from_decimal(s)
    }
}

macro_rules! forward_binop_nat {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                self.$impl_method(&rhs)
            }
        }
        impl $trait<&Nat> for Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                self.$impl_method(rhs)
            }
        }
        impl $trait<&Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                self.$impl_method(rhs)
            }
        }
        impl $trait<Nat> for &Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                self.$impl_method(&rhs)
            }
        }
    };
}

forward_binop_nat!(Add, add, add_ref);
forward_binop_nat!(Sub, sub, sub_ref);
forward_binop_nat!(Mul, mul, mul_ref);

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        *self = self.mul_ref(rhs);
    }
}

impl Rem<&Nat> for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.divrem(rhs).1
    }
}

impl Shl<usize> for &Nat {
    type Output = Nat;
    fn shl(self, bits: usize) -> Nat {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Nat {
    type Output = Nat;
    fn shr(self, bits: usize) -> Nat {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Nat {
        Nat::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert!(!Nat::one().is_zero());
        assert_eq!(Nat::zero().to_u64(), Some(0));
        assert_eq!(Nat::one().to_u64(), Some(1));
        assert_eq!(Nat::default(), Nat::zero());
    }

    #[test]
    fn add_small() {
        assert_eq!(n(2) + n(3), n(5));
        assert_eq!(n(0) + n(7), n(7));
        assert_eq!(n(u32::MAX as u64) + n(1), n(1 << 32));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = n(u64::MAX);
        let b = n(1);
        let sum = a + b;
        assert_eq!(sum.to_decimal(), "18446744073709551616");
        assert_eq!(sum.bit_len(), 65);
    }

    #[test]
    fn sub_small() {
        assert_eq!(n(10) - n(3), n(7));
        assert_eq!(n(10) - n(10), Nat::zero());
        assert_eq!(n(1 << 32) - n(1), n(u32::MAX as u64));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(3) - n(5);
    }

    #[test]
    fn checked_sub_none_on_underflow() {
        assert_eq!(n(3).checked_sub(&n(5)), None);
        assert_eq!(n(5).checked_sub(&n(3)), Some(n(2)));
    }

    #[test]
    fn mul_small() {
        assert_eq!(n(6) * n(7), n(42));
        assert_eq!(n(0) * n(7), Nat::zero());
        assert_eq!(n(u32::MAX as u64) * n(u32::MAX as u64), n(18446744065119617025));
    }

    #[test]
    fn mul_large() {
        // (2^64)^2 = 2^128
        let a = n(u64::MAX) + n(1);
        let sq = (&a).mul_ref(&a);
        assert_eq!(sq.to_decimal(), "340282366920938463463374607431768211456");
        assert_eq!(sq.bit_len(), 129);
    }

    #[test]
    fn divrem_basic() {
        let (q, r) = n(100).divrem(&n(7));
        assert_eq!(q, n(14));
        assert_eq!(r, n(2));
        let (q, r) = n(5).divrem(&n(10));
        assert_eq!(q, Nat::zero());
        assert_eq!(r, n(5));
    }

    #[test]
    fn divrem_multi_limb() {
        let a = Nat::from_decimal("340282366920938463463374607431768211457").unwrap();
        let b = Nat::from_decimal("18446744073709551616").unwrap();
        let (q, r) = a.divrem(&b);
        assert_eq!(q, b);
        assert_eq!(r, Nat::one());
        // Recompose.
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).divrem(&Nat::zero());
    }

    #[test]
    fn pow_and_zero_conventions() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(0).pow(0), Nat::one(), "the paper's 0^0 = 1 convention");
        assert_eq!(n(0).pow(5), Nat::zero());
        assert_eq!(n(7).pow(0), Nat::one());
        assert_eq!(n(10).pow(20).to_decimal(), "100000000000000000000");
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(17).gcd(&n(13)), n(1));
        assert_eq!(n(12).lcm(&n(18)), n(36));
        assert_eq!(n(0).lcm(&n(5)), Nat::zero());
        let a = n(2).pow(40) * n(3).pow(5);
        let b = n(2).pow(20) * n(5).pow(3);
        assert_eq!(a.gcd(&b), n(2).pow(20));
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl_bits(40), n(1 << 40));
        assert_eq!(n(1 << 40).shr_bits(40), n(1));
        assert_eq!(n(0b1011).shr_bits(2), n(0b10));
        assert_eq!(Nat::zero().shl_bits(100), Nat::zero());
        assert_eq!(n(5).shr_bits(100), Nat::zero());
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
            "340282366920938463463374607431768211456",
        ] {
            let v = Nat::from_decimal(s).unwrap();
            assert_eq!(v.to_decimal(), s);
        }
    }

    #[test]
    fn decimal_parse_errors() {
        assert!(Nat::from_decimal("").is_err());
        assert!(Nat::from_decimal("12a").is_err());
        assert!("x".parse::<Nat>().is_err());
        assert_eq!("1_000".parse::<Nat>().unwrap(), n(1000));
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(5));
        assert!(n(1 << 40) > n(u32::MAX as u64));
        let a = Nat::from_decimal("123456789012345678901234567890").unwrap();
        let b = Nat::from_decimal("123456789012345678901234567891").unwrap();
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bits() {
        assert_eq!(Nat::zero().bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(255).bit_len(), 8);
        assert_eq!(n(256).bit_len(), 9);
        assert!(n(4).is_even());
        assert!(!n(5).is_even());
        assert!(n(5).bit(0) && !n(5).bit(1) && n(5).bit(2));
    }

    #[test]
    fn mul_u32_and_divrem_u32() {
        let a = Nat::from_decimal("123456789012345678901234567890").unwrap();
        let b = a.mul_u32(1000);
        assert_eq!(b.to_decimal(), "123456789012345678901234567890000");
        let (q, r) = b.divrem_u32(1000);
        assert_eq!(q, a);
        assert_eq!(r, 0);
    }
}
