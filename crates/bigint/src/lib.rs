//! Arbitrary-precision integer arithmetic.
//!
//! The determinacy algorithms of the paper manipulate homomorphism counts that
//! grow as radix-`T` combinations and `k`-th powers of other homomorphism
//! counts (Section 6, Steps 2–3 of the good-basis construction), so fixed-width
//! machine integers overflow almost immediately.  This crate provides the two
//! number types used throughout the workspace:
//!
//! * [`Nat`] — an unsigned arbitrary-precision natural number,
//! * [`Int`] — a signed arbitrary-precision integer (sign + magnitude).
//!
//! The implementation is deliberately simple and self-contained (schoolbook
//! multiplication, shift–subtract long division, binary GCD): the numbers that
//! occur in practice have at most a few thousand bits, far below the regime
//! where asymptotically faster algorithms pay off.

// Arithmetic kernels run inside budgeted requests: failures must surface as
// typed errors (or documented assertions), never stray unwraps.  Tests are
// exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod int;
mod nat;

pub use int::{Int, Sign};
pub use nat::Nat;

/// Error returned when parsing a [`Nat`] or [`Int`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl std::fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
        }
    }
}

impl std::error::Error for ParseBigIntError {}

impl ParseBigIntError {
    fn empty() -> Self {
        ParseBigIntError {
            kind: ParseErrorKind::Empty,
        }
    }
    fn invalid(c: char) -> Self {
        ParseBigIntError {
            kind: ParseErrorKind::InvalidDigit(c),
        }
    }
}
