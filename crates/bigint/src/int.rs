//! Signed arbitrary-precision integers (sign + magnitude).

use crate::nat::Nat;
use crate::ParseBigIntError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Sign of an [`Int`]. Zero is always [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    sign: Sign,
    mag: Nat,
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

impl Int {
    /// The integer zero.
    pub fn zero() -> Self {
        Int {
            sign: Sign::Zero,
            mag: Nat::zero(),
        }
    }

    /// The integer one.
    pub fn one() -> Self {
        Int {
            sign: Sign::Positive,
            mag: Nat::one(),
        }
    }

    /// Bytes of heap storage owned by this value (zero when the magnitude
    /// is inline).  See [`Nat::heap_bytes`].
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.mag.heap_bytes()
    }

    /// The integer minus one.
    pub fn neg_one() -> Self {
        Int {
            sign: Sign::Negative,
            mag: Nat::one(),
        }
    }

    /// Construct from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int {
                sign: Sign::Positive,
                mag: Nat::from_u64(v as u64),
            },
            Ordering::Less => Int {
                sign: Sign::Negative,
                mag: Nat::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// Construct from a `u64` (always non-negative).
    pub fn from_u64(v: u64) -> Self {
        Int::from_nat(Nat::from_u64(v))
    }

    /// Construct from an `i128`.
    pub fn from_i128(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int {
                sign: Sign::Positive,
                mag: Nat::from_u128(v as u128),
            },
            Ordering::Less => Int {
                sign: Sign::Negative,
                mag: Nat::from_u128(v.unsigned_abs()),
            },
        }
    }

    /// Try to convert to `i128`; returns `None` if the value does not fit.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(m).ok(),
            Sign::Negative => {
                if m <= i128::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Construct a non-negative integer from a [`Nat`].
    pub fn from_nat(mag: Nat) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int {
                sign: Sign::Positive,
                mag,
            }
        }
    }

    /// Construct from an explicit sign and magnitude (sign is normalised if the
    /// magnitude is zero).
    pub fn from_sign_mag(sign: Sign, mag: Nat) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            match sign {
                Sign::Zero => Int::zero(),
                s => Int { sign: s, mag },
            }
        }
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value) as a [`Nat`].
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        Int::from_nat(self.mag.clone())
    }

    /// Whether this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this integer is one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag.is_one()
    }

    /// Whether this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Whether this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Try to convert to `i64`; returns `None` if the value does not fit.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m <= i64::MAX as u64 + 1 {
                    Some((-(m as i128)) as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Try to convert to a [`Nat`]; `None` if negative.
    pub fn to_nat(&self) -> Option<Nat> {
        match self.sign {
            Sign::Negative => None,
            _ => Some(self.mag.clone()),
        }
    }

    /// Addition.
    pub fn add_ref(&self, other: &Int) -> Int {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Int {
                sign: a,
                mag: self.mag.add_ref(&other.mag),
            },
            _ => {
                // Opposite signs: subtract magnitudes.
                match self.mag.cmp(&other.mag) {
                    Ordering::Equal => Int::zero(),
                    Ordering::Greater => Int {
                        sign: self.sign,
                        mag: self.mag.sub_ref(&other.mag),
                    },
                    Ordering::Less => Int {
                        sign: other.sign,
                        mag: other.mag.sub_ref(&self.mag),
                    },
                }
            }
        }
    }

    /// Subtraction.
    pub fn sub_ref(&self, other: &Int) -> Int {
        self.add_ref(&other.neg_ref())
    }

    /// Multiplication.
    pub fn mul_ref(&self, other: &Int) -> Int {
        if self.is_zero() || other.is_zero() {
            return Int::zero();
        }
        let sign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        Int {
            sign,
            mag: self.mag.mul_ref(&other.mag),
        }
    }

    /// Negation.
    pub fn neg_ref(&self) -> Int {
        match self.sign {
            Sign::Zero => Int::zero(),
            Sign::Positive => Int {
                sign: Sign::Negative,
                mag: self.mag.clone(),
            },
            Sign::Negative => Int {
                sign: Sign::Positive,
                mag: self.mag.clone(),
            },
        }
    }

    /// Truncated division with remainder: `self = q*divisor + r` with
    /// `|r| < |divisor|` and `r` having the sign of `self` (or zero).
    pub fn divrem(&self, divisor: &Int) -> (Int, Int) {
        assert!(!divisor.is_zero(), "division by zero Int");
        let (qm, rm) = self.mag.divrem(&divisor.mag);
        let qsign = if self.sign == divisor.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        (
            Int::from_sign_mag(qsign, qm),
            Int::from_sign_mag(self.sign, rm),
        )
    }

    /// Exact division; panics if `divisor` does not divide `self`.
    pub fn div_exact(&self, divisor: &Int) -> Int {
        let (q, r) = self.divrem(divisor);
        assert!(r.is_zero(), "div_exact: remainder is not zero");
        q
    }

    /// Exponentiation by squaring. `0^0 = 1` (the paper's convention).
    pub fn pow(&self, exp: u64) -> Int {
        let mag = self.mag.pow(exp);
        let sign = match self.sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Positive
                } else {
                    Sign::Zero
                }
            }
            Sign::Positive => Sign::Positive,
            Sign::Negative => {
                if exp.is_multiple_of(2) {
                    Sign::Positive
                } else {
                    Sign::Negative
                }
            }
        };
        Int::from_sign_mag(sign, mag)
    }

    /// Non-negative greatest common divisor.
    pub fn gcd(&self, other: &Int) -> Int {
        Int::from_nat(self.mag.gcd(&other.mag))
    }

    /// Non-negative least common multiple.
    pub fn lcm(&self, other: &Int) -> Int {
        Int::from_nat(self.mag.lcm(&other.mag))
    }

    /// Parse from a decimal string with optional leading `+` or `-`.
    pub fn from_decimal(s: &str) -> Result<Int, ParseBigIntError> {
        if s.is_empty() {
            return Err(ParseBigIntError::empty());
        }
        let (neg, rest) = match s.as_bytes()[0] {
            b'-' => (true, &s[1..]),
            b'+' => (false, &s[1..]),
            _ => (false, s),
        };
        let mag = Nat::from_decimal(rest)?;
        Ok(Int::from_sign_mag(
            if neg { Sign::Negative } else { Sign::Positive },
            mag,
        ))
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.mag.cmp(&self.mag),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.mag.cmp(&other.mag),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        Int::from_i64(v)
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::from_i64(v as i64)
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int::from_u64(v)
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Self {
        Int::from_u64(v as u64)
    }
}

impl From<Nat> for Int {
    fn from(v: Nat) -> Self {
        Int::from_nat(v)
    }
}

impl FromStr for Int {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Int::from_decimal(s)
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        self.neg_ref()
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        self.neg_ref()
    }
}

macro_rules! forward_binop_int {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$impl_method(&rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                self.$impl_method(rhs)
            }
        }
        impl $trait<&Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                self.$impl_method(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$impl_method(&rhs)
            }
        }
    };
}

forward_binop_int!(Add, add, add_ref);
forward_binop_int!(Sub, sub, sub_ref);
forward_binop_int!(Mul, mul, mul_ref);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from_i64(v)
    }

    #[test]
    fn construction_and_sign() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert!(Int::neg_one().is_negative());
        assert_eq!(i(0).sign(), Sign::Zero);
        assert_eq!(i(5).sign(), Sign::Positive);
        assert_eq!(i(-5).sign(), Sign::Negative);
        assert_eq!(Int::from_sign_mag(Sign::Negative, Nat::zero()), Int::zero());
        assert_eq!(Int::default(), Int::zero());
    }

    #[test]
    fn add_sub_signs() {
        assert_eq!(i(3) + i(5), i(8));
        assert_eq!(i(3) + i(-5), i(-2));
        assert_eq!(i(-3) + i(5), i(2));
        assert_eq!(i(-3) + i(-5), i(-8));
        assert_eq!(i(5) - i(5), i(0));
        assert_eq!(i(3) - i(10), i(-7));
        assert_eq!(i(-3) - i(-10), i(7));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(i(3) * i(5), i(15));
        assert_eq!(i(-3) * i(5), i(-15));
        assert_eq!(i(3) * i(-5), i(-15));
        assert_eq!(i(-3) * i(-5), i(15));
        assert_eq!(i(0) * i(-5), i(0));
    }

    #[test]
    fn divrem_truncated() {
        let (q, r) = i(7).divrem(&i(2));
        assert_eq!((q, r), (i(3), i(1)));
        let (q, r) = i(-7).divrem(&i(2));
        assert_eq!((q, r), (i(-3), i(-1)));
        let (q, r) = i(7).divrem(&i(-2));
        assert_eq!((q, r), (i(-3), i(1)));
        let (q, r) = i(-7).divrem(&i(-2));
        assert_eq!((q, r), (i(3), i(-1)));
    }

    #[test]
    fn divrem_invariant() {
        for a in [-20i64, -7, -1, 0, 1, 7, 20, 1000] {
            for b in [-9i64, -3, -1, 1, 3, 9] {
                let (q, r) = i(a).divrem(&i(b));
                assert_eq!(q * i(b) + &r, i(a), "a={a} b={b}");
                assert!(r.magnitude() < i(b).magnitude());
            }
        }
    }

    #[test]
    fn div_exact_ok_and_panic() {
        assert_eq!(i(42).div_exact(&i(-7)), i(-6));
        let res = std::panic::catch_unwind(|| i(43).div_exact(&i(7)));
        assert!(res.is_err());
    }

    #[test]
    fn pow_signs() {
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(-2).pow(4), i(16));
        assert_eq!(i(0).pow(0), i(1));
        assert_eq!(i(0).pow(3), i(0));
        assert_eq!(i(10).pow(25).to_string(), "10000000000000000000000000");
    }

    #[test]
    fn gcd_lcm_nonnegative() {
        assert_eq!(i(-12).gcd(&i(18)), i(6));
        assert_eq!(i(12).gcd(&i(-18)), i(6));
        assert_eq!(i(-4).lcm(&i(-6)), i(12));
    }

    #[test]
    fn ordering() {
        assert!(i(-5) < i(-3));
        assert!(i(-3) < i(0));
        assert!(i(0) < i(2));
        assert!(i(2) < i(10));
        let big = Int::from_decimal("-123456789012345678901234567890").unwrap();
        assert!(big < i(-5));
    }

    #[test]
    fn parse_display_round_trip() {
        for s in [
            "0",
            "1",
            "-1",
            "123456789012345678901234567890",
            "-987654321",
        ] {
            let v = Int::from_decimal(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!(Int::from_decimal("+17").unwrap(), i(17));
        assert_eq!(Int::from_decimal("-0").unwrap(), Int::zero());
        assert!(Int::from_decimal("").is_err());
        assert!(Int::from_decimal("--1").is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(i(-42).to_i64(), Some(-42));
        assert_eq!(i(42).to_nat(), Some(Nat::from_u64(42)));
        assert_eq!(i(-42).to_nat(), None);
        assert_eq!(Int::from(7u64), i(7));
        assert_eq!(Int::from(Nat::from_u64(9)), i(9));
        assert_eq!(i(i64::MIN).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn neg() {
        assert_eq!(-i(5), i(-5));
        assert_eq!(-i(-5), i(5));
        assert_eq!(-Int::zero(), Int::zero());
        assert_eq!(i(5).abs(), i(5));
        assert_eq!(i(-5).abs(), i(5));
    }
}
