//! Tier 1 of the exact linear-algebra stack: **modular prescreening**.
//!
//! The span decision of the Main Lemma (Lemma 31) — and the rank / solve
//! questions the counterexample construction asks (Lemmas 40, 46, 57) — are
//! exact questions over ℚ, but their inputs are homomorphism counts whose
//! bit size grows with structure size, so dense elimination over [`Rat`]
//! pays bignum gcd/mul on every pivot step.  This module answers the same
//! questions over `ℤ/p` for 2–3 word-size primes first, where every
//! operation is a handful of machine instructions (Montgomery reduction,
//! [`PrimeField`]), and then makes the answer *exact* again:
//!
//! * a **solution** found mod p is lifted by CRT + rational reconstruction
//!   (Wang's algorithm) and re-verified entry by entry in exact rational
//!   arithmetic — only a verified `Σ αⱼ·v⃗ⱼ = q⃗` identity is returned;
//! * a **rejection** mod p comes with a left-null certificate `y⃗`
//!   (`y⃗ᵀA = 0`, `y⃗ᵀb ≠ 0`), which is lifted and re-verified the same way —
//!   an exactly verified certificate proves `q⃗ ∉ span` over ℚ, Fact-5 style;
//! * anything that cannot be certified (a prime dividing a denominator, a
//!   mod-p rank undercount, a reconstruction overflow) falls back to the
//!   exact tiers: first elimination on the submatrix named by the mod-p
//!   rank profile, then full exact elimination ([`SpanOutcome::Fallback`]).
//!
//! No approximate result can escape: every non-fallback outcome carries an
//! exact certificate checked in ℚ before it is returned, and the engine's
//! span-identity / counterexample re-verification remains in place one
//! layer up.  `CQDET_EXACT_LINALG=1` disables the modular tier entirely
//! (see [`exact_linalg_forced`]), forcing the pure-`Rat` path.

use crate::rat::Rat;
use crate::vector::{dot, QVec};
use cqdet_bigint::Int;
use cqdet_parallel::{Gas, Interrupt};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether the `CQDET_EXACT_LINALG=1` escape hatch is active (checked once
/// per process).  When set, every modular prescreen reports
/// [`SpanOutcome::Fallback`] / `None` immediately and the callers run pure
/// exact rational elimination — the differential-debugging twin of
/// `CQDET_NAIVE_HOM` / `CQDET_SERIAL`.
pub fn exact_linalg_forced() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("CQDET_EXACT_LINALG")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

// ---- word-size prime arithmetic --------------------------------------------

#[inline]
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn powmod(mut b: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    b %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mulmod(acc, b, m);
        }
        b = mulmod(b, b, m);
        e >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin for `u64` (the 12-base set is exact for all
/// 64-bit inputs).
fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The three fixed word-size primes of the modular tier: the largest primes
/// below `2⁶²`, verified by deterministic Miller–Rabin at first use (no
/// hand-copied constants to get wrong).  Primes 1–2 solve and CRT-combine;
/// prime 3 is an independent consistency check applied to reconstructed
/// values before the exact verification runs.
pub fn primes() -> &'static [u64; 3] {
    static PRIMES: OnceLock<[u64; 3]> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let mut found = [0u64; 3];
        let mut candidate = (1u64 << 62) - 1;
        let mut i = 0;
        while i < 3 {
            if is_prime_u64(candidate) {
                found[i] = candidate;
                i += 1;
            }
            candidate -= 2;
        }
        found
    })
}

/// `ℤ/p` arithmetic in Montgomery form (`R = 2⁶⁴`) for an odd prime
/// `p < 2⁶³`.  All inputs and outputs of [`PrimeField::mul`] /
/// [`PrimeField::add`] / [`PrimeField::sub`] / [`PrimeField::inv`] are
/// Montgomery residues; [`PrimeField::rat`] maps an exact rational in and
/// [`PrimeField::lift`] maps a residue back to `[0, p)`.
#[derive(Clone, Copy, Debug)]
pub struct PrimeField {
    p: u64,
    /// `-p⁻¹ mod 2⁶⁴` (Newton iteration; the REDC constant).
    neg_pinv: u64,
    /// `2¹²⁸ mod p` — multiplying by it converts into Montgomery form.
    r2: u64,
    /// `2⁶⁴ mod p` — the Montgomery residue of one.
    r1: u64,
}

impl PrimeField {
    /// The field `ℤ/p` for an odd prime `p < 2⁶³`.
    pub fn new(p: u64) -> PrimeField {
        assert!(
            p % 2 == 1 && p > 1 && p < (1 << 63),
            "need an odd prime < 2^63"
        );
        // Newton: x ← x·(2 − p·x) doubles the number of correct low bits;
        // x = p is already correct mod 2³ for odd p.
        let mut x: u64 = p;
        for _ in 0..5 {
            x = x.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(x)));
        }
        debug_assert_eq!(p.wrapping_mul(x), 1);
        let r1 = ((u64::MAX as u128 + 1) % p as u128) as u64;
        let r2 = mulmod(r1, r1, p);
        PrimeField {
            p,
            neg_pinv: x.wrapping_neg(),
            r2,
            r1,
        }
    }

    /// The modulus.
    pub fn prime(&self) -> u64 {
        self.p
    }

    /// The Montgomery residue of one.
    #[inline]
    pub fn one(&self) -> u64 {
        self.r1
    }

    /// REDC: `a·b·2⁻⁶⁴ mod p`.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        let t = a as u128 * b as u128;
        let m = (t as u64).wrapping_mul(self.neg_pinv);
        let u = ((t + m as u128 * self.p as u128) >> 64) as u64;
        if u >= self.p {
            u - self.p
        } else {
            u
        }
    }

    /// Field addition.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let s = a + b; // p < 2^63, so no overflow
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// Field subtraction.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// Convert `x ∈ [0, p)` into Montgomery form.
    #[inline]
    pub fn to_mont(&self, x: u64) -> u64 {
        self.mul(x % self.p, self.r2)
    }

    /// Convert a Montgomery residue back to its value in `[0, p)`.
    #[inline]
    pub fn lift(&self, a: u64) -> u64 {
        self.mul(a, 1)
    }

    /// Multiplicative inverse of a non-zero Montgomery residue (Fermat).
    pub fn inv(&self, a: u64) -> u64 {
        debug_assert!(a != 0);
        let mut acc = self.r1;
        let mut base = a;
        let mut e = self.p - 2;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// The Montgomery residue of an exact rational, or `None` when `p`
    /// divides the (reduced) denominator — the *bad prime* case: the
    /// rational has no image in `ℤ/p` and the caller must skip this prime.
    pub fn rat(&self, r: &Rat) -> Option<u64> {
        let den = r.denom().mod_u64(self.p);
        if den == 0 {
            return None;
        }
        let num = r.numer().magnitude().mod_u64(self.p);
        let num = if r.numer().is_negative() && num != 0 {
            self.p - num
        } else {
            num
        };
        let num = self.to_mont(num);
        if den == 1 {
            return Some(num);
        }
        Some(self.mul(num, self.inv(self.to_mont(den))))
    }
}

// ---- dual-prime lanes -------------------------------------------------------

/// Whether the `CQDET_SEQUENTIAL_LANES=1` escape hatch is active (checked
/// once): run the dual-prime elimination as two sequential per-lane passes —
/// the shape the engine shipped with before the interleaved rewrite — kept
/// as the differential-testing oracle of the lane kernel.
fn sequential_lanes_env() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("CQDET_SEQUENTIAL_LANES")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Process-wide programmatic override of the sequential-lane hatch, for
/// tests that must exercise both kernels inside one process (the env flag
/// is latched on first use).  Tests using it run in their own
/// integration-test binary so the global cannot race with unrelated tests.
static FORCE_SEQUENTIAL: AtomicBool = AtomicBool::new(false);

/// Force (or stop forcing) the sequential per-lane elimination, regardless
/// of the `CQDET_SEQUENTIAL_LANES` environment flag.  Test-only knob.
#[doc(hidden)]
pub fn force_sequential_lanes(on: bool) {
    FORCE_SEQUENTIAL.store(on, Ordering::SeqCst);
}

/// Whether the sequential oracle kernel is selected (env hatch or override).
fn sequential_lanes_active() -> bool {
    FORCE_SEQUENTIAL.load(Ordering::SeqCst) || sequential_lanes_env()
}

/// The two solver primes' Montgomery arithmetic over `[u64; 2]` lanes: each
/// operation performs both primes' reductions in adjacent lanes, so one
/// Gauss–Jordan pass eliminates modulo both primes at once (instead of two
/// sequential single-prime eliminations), and the straight-line two-lane
/// bodies vectorize.
#[derive(Clone, Copy)]
struct DualField {
    f: [PrimeField; 2],
}

impl DualField {
    #[inline]
    fn mul(&self, a: [u64; 2], b: [u64; 2]) -> [u64; 2] {
        [self.f[0].mul(a[0], b[0]), self.f[1].mul(a[1], b[1])]
    }

    #[inline]
    fn sub(&self, a: [u64; 2], b: [u64; 2]) -> [u64; 2] {
        [self.f[0].sub(a[0], b[0]), self.f[1].sub(a[1], b[1])]
    }
}

/// Both solver primes' fully reduced copies of the system, interleaved in
/// `[u64; 2]` lanes.  Lane 0 always holds a good prime (the driver);
/// `lane1_ok` records whether lane 1's prime divides no denominator — when
/// it does, lane 1 carries zeros and only lane 0 is meaningful.
struct DualSystem {
    dual: DualField,
    cols: Vec<Vec<[u64; 2]>>,
    b: Vec<[u64; 2]>,
    lane1_ok: bool,
}

/// Reduce every entry of the system mod both solver primes in one limb walk
/// per entry ([`cqdet_bigint::Nat::mod_pair_u64`]).  A prime dividing some
/// (reduced) denominator is *bad*: its lane is zeroed and flagged.  When the
/// first prime is bad the lanes are swapped so lane 0 still drives; `None`
/// when both primes are bad.
fn reduce_system_dual(
    fields: [PrimeField; 2],
    vectors: &[QVec],
    target: &QVec,
) -> Option<DualSystem> {
    let ps = [fields[0].prime(), fields[1].prime()];
    let mut ok = [true, true];
    let mut pair = |r: &Rat| -> [u64; 2] {
        let den = r.denom().mod_pair_u64(ps);
        let num = r.numer().magnitude().mod_pair_u64(ps);
        let mut out = [0u64; 2];
        for l in 0..2 {
            if !ok[l] {
                continue;
            }
            if den[l] == 0 {
                ok[l] = false;
                continue;
            }
            let f = &fields[l];
            let mut n = num[l];
            if r.numer().is_negative() && n != 0 {
                n = ps[l] - n;
            }
            let n = f.to_mont(n);
            out[l] = if den[l] == 1 {
                n
            } else {
                f.mul(n, f.inv(f.to_mont(den[l])))
            };
        }
        out
    };
    let mut cols: Vec<Vec<[u64; 2]>> = vectors
        .iter()
        .map(|v| v.iter().map(&mut pair).collect())
        .collect();
    let mut b: Vec<[u64; 2]> = target.iter().map(&mut pair).collect();
    let mut fields = fields;
    if !ok[0] {
        if !ok[1] {
            return None;
        }
        // Swap lanes so the good prime drives; entries reduced before the
        // bad denominator was hit carry stale lane-0 values, so re-zero.
        fields.swap(0, 1);
        for e in cols.iter_mut().flatten().chain(b.iter_mut()) {
            *e = [e[1], 0];
        }
        ok = [true, false];
    } else if !ok[1] {
        for e in cols.iter_mut().flatten().chain(b.iter_mut()) {
            e[1] = 0;
        }
    }
    Some(DualSystem {
        dual: DualField { f: fields },
        cols,
        b,
        lane1_ok: ok[1],
    })
}

/// Extract one lane of a [`DualSystem`] as a single-prime system (for the
/// certificate path, which lifts per-prime certificates and cannot ride the
/// shared-pivot dual elimination).
fn lane_system(sys: &DualSystem, lane: usize) -> ReducedSystem {
    ReducedSystem {
        field: sys.dual.f[lane],
        cols: sys
            .cols
            .iter()
            .map(|c| c.iter().map(|e| e[lane]).collect())
            .collect(),
        b: sys.b.iter().map(|e| e[lane]).collect(),
    }
}

// ---- mod-p elimination ------------------------------------------------------

/// The outcome of one Gauss–Jordan elimination of `[A | b⃗ | I]` over `ℤ/p`.
struct ZpElimination {
    /// Pivot columns of `A` — the mod-p rank profile (a subset of the exact
    /// rank profile's independent set: independence mod p implies
    /// independence over ℚ).
    pivot_cols: Vec<usize>,
    /// A solution of `A·x⃗ = b⃗` mod p (Montgomery residues, zero on free
    /// columns) when the system is consistent mod p.
    solution: Option<Vec<u64>>,
    /// When inconsistent mod p: `y⃗` (Montgomery residues, indexed by
    /// original row) with `y⃗ᵀA = 0` and `y⃗ᵀb⃗ ≠ 0` mod p.
    certificate: Option<Vec<u64>>,
}

/// Eliminate the augmented system `[A | b⃗]` over `ℤ/p`, where `A` is given
/// by `cols` (each of length `k`).  With `with_certificate`, the system is
/// further augmented by the `k × k` identity block, whose eliminated rows
/// turn an inconsistency into a constructive left-null certificate — the
/// extra `k` columns multiply the inner-loop work, so callers only ask for
/// it when they will actually lift a certificate (the Solved and
/// full-column-rank-rejection paths never do).
/// Additionally charges the [`Gas`] handle per row operation (`width`
/// steps each — machine-word work, so no byte accounting), interrupting
/// mid-elimination on an exhausted budget or expired deadline.
fn eliminate_mod_p(
    f: &PrimeField,
    cols: &[Vec<u64>],
    b: &[u64],
    with_certificate: bool,
    gas: &mut Gas,
) -> Result<ZpElimination, Interrupt> {
    let k = b.len();
    let n = cols.len();
    let width = if with_certificate { n + 1 + k } else { n + 1 };
    let mut rows: Vec<Vec<u64>> = (0..k)
        .map(|i| {
            let mut row = Vec::with_capacity(width);
            for c in cols {
                row.push(c[i]);
            }
            row.push(b[i]);
            if with_certificate {
                row.extend(std::iter::repeat_n(0u64, k));
                row[n + 1 + i] = f.one();
            }
            row
        })
        .collect();
    let mut orig: Vec<usize> = (0..k).collect();
    let mut pivot_cols = Vec::new();
    let mut pr = 0usize;
    for col in 0..n {
        if pr >= k {
            break;
        }
        let Some(sel) = (pr..k).find(|&r| rows[r][col] != 0) else {
            continue;
        };
        rows.swap(pr, sel);
        orig.swap(pr, sel);
        let inv = f.inv(rows[pr][col]);
        for x in rows[pr].iter_mut() {
            if *x != 0 {
                *x = f.mul(*x, inv);
            }
        }
        for r in 0..k {
            if r == pr || rows[r][col] == 0 {
                continue;
            }
            gas.steps(width as u64)?;
            let factor = rows[r][col];
            let (pivot, target) = row_pair(&mut rows, pr, r);
            for j in 0..width {
                if pivot[j] != 0 {
                    target[j] = f.sub(target[j], f.mul(factor, pivot[j]));
                }
            }
        }
        pivot_cols.push(col);
        pr += 1;
    }
    gas.flush()?;
    for row in rows.iter().skip(pr) {
        if row[n] != 0 {
            // This row of the eliminated matrix says yᵀ·[A | b] = [0 | ≠0],
            // with y recorded (per original row index) in the identity part
            // when it was carried.
            return Ok(ZpElimination {
                pivot_cols,
                solution: None,
                certificate: with_certificate.then(|| row[n + 1..].to_vec()),
            });
        }
    }
    let mut x = vec![0u64; n];
    for (i, &c) in pivot_cols.iter().enumerate() {
        x[c] = rows[i][n];
    }
    Ok(ZpElimination {
        pivot_cols,
        solution: Some(x),
        certificate: None,
    })
}

/// Disjoint `(pivot, target)` row borrows.
fn row_pair(rows: &mut [Vec<u64>], src: usize, dst: usize) -> (&[u64], &mut [u64]) {
    debug_assert_ne!(src, dst);
    if src < dst {
        let (head, tail) = rows.split_at_mut(dst);
        (&head[src], &mut tail[0])
    } else {
        let (head, tail) = rows.split_at_mut(src);
        (&tail[0], &mut head[dst])
    }
}

/// Disjoint `(pivot, target)` row borrows over `[u64; 2]`-lane rows.
fn row_pair_dual(
    rows: &mut [Vec<[u64; 2]>],
    src: usize,
    dst: usize,
) -> (&[[u64; 2]], &mut [[u64; 2]]) {
    debug_assert_ne!(src, dst);
    if src < dst {
        let (head, tail) = rows.split_at_mut(dst);
        (&head[src], &mut tail[0])
    } else {
        let (head, tail) = rows.split_at_mut(src);
        (&tail[0], &mut head[dst])
    }
}

/// The outcome of one dual-lane Gauss–Jordan elimination of `[A | b⃗]`.
struct DualElimination {
    /// Pivot columns — lane 0's mod-p rank profile (lane 0 drives pivoting).
    pivot_cols: Vec<usize>,
    /// Original row indices of the pivot rows, in pivot order.
    pivot_rows: Vec<usize>,
    /// A solution of `A·x⃗ = b⃗` (Montgomery residues per lane, zero on free
    /// columns) when the system is consistent mod lane 0's prime.
    solution: Option<Vec<[u64; 2]>>,
    /// Whether lane 1's residues are trustworthy: its prime was good, every
    /// pivot chosen by lane 0 was invertible mod it, and the zero rows were
    /// consistent in its lane too.  When false, only lane 0 may be used.
    lane1_ok: bool,
}

/// Gauss–Jordan elimination of `[A | b⃗]` over both solver primes at once:
/// pivoting is driven by lane 0, and every row operation updates both lanes
/// with per-lane factors — so whenever lane 1 survives (`lane1_ok`), both
/// lanes are in reduced row-echelon form *with the same pivot sequence*, and
/// the two residue vectors describe the same rational solution (the unique
/// one supported on the shared rank profile).  That is exactly what CRT
/// lifting needs, without a second elimination pass over the matrix.
///
/// Two kernel shapes compute the identical row-op sequence:
///
/// * **interleaved** (default): one pass per row operation, both Montgomery
///   reductions in adjacent `[u64; 2]` lanes — the auto-vectorizable shape;
/// * **sequential** (`CQDET_SEQUENTIAL_LANES=1` / [`force_sequential_lanes`]):
///   two per-lane passes per row operation — the pre-rewrite shape, kept as
///   the differential oracle.
///
/// Gas is charged once per row operation (`2·width` steps — one lane each),
/// outside the kernel branch, so the two shapes meter identically.
fn eliminate_mod_dual(sys: &DualSystem, gas: &mut Gas) -> Result<DualElimination, Interrupt> {
    let k = sys.b.len();
    let n = sys.cols.len();
    let width = n + 1;
    let dual = &sys.dual;
    let sequential = sequential_lanes_active();
    let mut rows: Vec<Vec<[u64; 2]>> = (0..k)
        .map(|i| {
            let mut row = Vec::with_capacity(width);
            for c in &sys.cols {
                row.push(c[i]);
            }
            row.push(sys.b[i]);
            row
        })
        .collect();
    let mut orig: Vec<usize> = (0..k).collect();
    let mut pivot_cols = Vec::new();
    let mut pivot_rows = Vec::new();
    let mut lane1_ok = sys.lane1_ok;
    let mut pr = 0usize;
    for col in 0..n {
        if pr >= k {
            break;
        }
        let Some(sel) = (pr..k).find(|&r| rows[r][col][0] != 0) else {
            continue;
        };
        rows.swap(pr, sel);
        orig.swap(pr, sel);
        let pv = rows[pr][col];
        let inv0 = dual.f[0].inv(pv[0]);
        let inv1 = if lane1_ok && pv[1] != 0 {
            dual.f[1].inv(pv[1])
        } else {
            // Lane 0's pivot is not invertible mod lane 1's prime: lane 1
            // cannot follow this pivot sequence.  Keep its lane arithmetic
            // running (harmless garbage) but never use its residues.
            lane1_ok = false;
            dual.f[1].one()
        };
        let inv = [inv0, inv1];
        for x in rows[pr].iter_mut() {
            *x = dual.mul(*x, inv);
        }
        for r in 0..k {
            let factor = rows[r][col];
            if r == pr || factor == [0, 0] {
                continue;
            }
            gas.steps(2 * width as u64)?;
            let (pivot, target) = row_pair_dual(&mut rows, pr, r);
            if sequential {
                for (t, p) in target.iter_mut().zip(pivot.iter()) {
                    t[0] = dual.f[0].sub(t[0], dual.f[0].mul(factor[0], p[0]));
                }
                for (t, p) in target.iter_mut().zip(pivot.iter()) {
                    t[1] = dual.f[1].sub(t[1], dual.f[1].mul(factor[1], p[1]));
                }
            } else {
                for (t, p) in target.iter_mut().zip(pivot.iter()) {
                    *t = dual.sub(*t, dual.mul(factor, *p));
                }
            }
        }
        pivot_cols.push(col);
        pivot_rows.push(orig[pr]);
        pr += 1;
    }
    gas.flush()?;
    for row in rows.iter().skip(pr) {
        if row[n][0] != 0 {
            return Ok(DualElimination {
                pivot_cols,
                pivot_rows,
                solution: None,
                lane1_ok,
            });
        }
        if row[n][1] != 0 {
            // Consistent mod lane 0's prime but not mod lane 1's: no
            // solution supported on the shared profile exists in lane 1.
            lane1_ok = false;
        }
    }
    let mut x = vec![[0u64; 2]; n];
    for (i, &c) in pivot_cols.iter().enumerate() {
        x[c] = rows[i][n];
    }
    Ok(DualElimination {
        pivot_cols,
        pivot_rows,
        solution: Some(x),
        lane1_ok,
    })
}

// ---- CRT + rational reconstruction -----------------------------------------

/// Integer square root of a `u128` (Newton; exact floor).
fn isqrt_u128(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    let mut x = 1u128 << (v.ilog2() / 2 + 1);
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// Wang's rational reconstruction: the unique `n/d` with
/// `|n|, d ≤ ⌊√(m/2)⌋`, `gcd(d, m) = 1` and `n ≡ u·d (mod m)`, if one
/// exists.  `m < 2¹²⁵` so every intermediate fits `i128`.
fn rat_reconstruct(u: u128, m: u128) -> Option<(i128, u128)> {
    debug_assert!(u < m && m < 1 << 125);
    let bound = isqrt_u128(m >> 1).max(1);
    let (mut r0, mut r1) = (m as i128, u as i128);
    let (mut t0, mut t1) = (0i128, 1i128);
    while r1 as u128 > bound {
        let q = r0 / r1;
        (r0, r1) = (r1, r0 - q * r1);
        (t0, t1) = (t1, t0 - q * t1);
    }
    if t1 == 0 {
        return None;
    }
    let (n, d) = if t1 < 0 { (-r1, -t1) } else { (r1, t1) };
    if d as u128 > bound {
        return None;
    }
    let mut a = n.unsigned_abs();
    let mut b = d.unsigned_abs();
    while b != 0 {
        (a, b) = (b, a % b);
    }
    if a != 1 {
        return None;
    }
    Some((n, d as u128))
}

/// CRT-combine residues `a₁ mod p₁` and `a₂ mod p₂` into the unique value
/// mod `p₁·p₂`.
fn crt2(a1: u64, p1: u64, a2: u64, p2: u64) -> u128 {
    let inv = powmod(p1 % p2, p2 - 2, p2);
    let diff = if a2 >= a1 % p2 {
        a2 - a1 % p2
    } else {
        a2 + p2 - a1 % p2
    };
    let t = mulmod(diff, inv, p2);
    a1 as u128 + p1 as u128 * t as u128
}

/// Build the exact rational for a reconstructed `(numerator, denominator)`.
fn rat_of(n: i128, d: u128) -> Rat {
    Rat::new(Int::from_i128(n), Int::from_i128(d as i128))
}

// ---- the tiered span solve --------------------------------------------------

/// The answer of [`span_solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanOutcome {
    /// `target = Σ αⱼ·vectorsⱼ`, with the identity re-verified in exact
    /// rational arithmetic before returning.
    Solved(QVec),
    /// `target ∉ span{vectors}` — proved by an exactly verified left-null
    /// certificate `y⃗` (`⟨y⃗, v⃗ⱼ⟩ = 0` for all `j`, `⟨y⃗, target⟩ ≠ 0`).
    Rejected,
    /// The modular tier could not certify either way (hatch active, all
    /// primes bad, reconstruction failed, certificate failed exact
    /// verification); the caller must run exact elimination.
    Fallback,
}

/// One prime's fully reduced copy of the system.
struct ReducedSystem {
    field: PrimeField,
    cols: Vec<Vec<u64>>,
    b: Vec<u64>,
}

/// Reduce every entry of the system mod `p`; `None` if `p` divides any
/// denominator (bad prime).
fn reduce_system(field: PrimeField, vectors: &[QVec], target: &QVec) -> Option<ReducedSystem> {
    let cols = vectors
        .iter()
        .map(|v| v.iter().map(|r| field.rat(r)).collect::<Option<Vec<u64>>>())
        .collect::<Option<Vec<Vec<u64>>>>()?;
    let b = target
        .iter()
        .map(|r| field.rat(r))
        .collect::<Option<Vec<u64>>>()?;
    Some(ReducedSystem { field, cols, b })
}

/// Exact check of `Σ αⱼ·v⃗ⱼ = target`, row by row with early abort.
///
/// The common production case — integer vectors and target (homomorphism
/// counts), rational coefficients from the Wang lift — takes the integer
/// fast path: scale the coefficients by the lcm `D` of their denominators
/// and check `Σ (D·αⱼ)·vⱼᵢ = D·targetᵢ` in pure [`Int`] arithmetic, which
/// replaces a gcd-normalizing [`Rat`] multiply-add per cell with one bignum
/// multiply-accumulate.
fn verify_combination(vectors: &[QVec], target: &QVec, alpha: &[Rat]) -> bool {
    let k = target.dim();
    if target.iter().all(|r| r.is_integer())
        && vectors.iter().all(|v| v.iter().all(|r| r.is_integer()))
    {
        let mut d = Int::one();
        for a in alpha {
            d = d.lcm(&Int::from_nat(a.denom().clone()));
        }
        let scaled: Vec<Int> = alpha
            .iter()
            .map(|a| {
                a.numer()
                    .mul_ref(&d.div_exact(&Int::from_nat(a.denom().clone())))
            })
            .collect();
        let d_is_one = d.is_one();
        for i in 0..k {
            let mut acc = Int::zero();
            for (j, v) in vectors.iter().enumerate() {
                if !scaled[j].is_zero() && !v[i].is_zero() {
                    acc = acc.add_ref(&scaled[j].mul_ref(v[i].numer()));
                }
            }
            let mismatch = if d_is_one {
                acc != *target[i].numer()
            } else {
                acc != target[i].numer().mul_ref(&d)
            };
            if mismatch {
                return false;
            }
        }
        return true;
    }
    for i in 0..k {
        let mut acc = Rat::zero();
        for (j, v) in vectors.iter().enumerate() {
            if !alpha[j].is_zero() && !v[i].is_zero() {
                acc = acc.add_mul_ref(&alpha[j], &v[i]);
            }
        }
        if acc != target[i] {
            return false;
        }
    }
    true
}

/// Exact check of the rejection certificate: `y⃗ ⊥ every v⃗ⱼ`, `y⃗ ⊥̸ target`.
fn verify_rejection(vectors: &[QVec], target: &QVec, y: &QVec) -> bool {
    vectors.iter().all(|v| dot(y, v).is_zero()) && !dot(y, target).is_zero()
}

/// Cheap consistency probe of a reconstructed vector against an independent
/// check prime: images must match the residues a direct reduction gives.
/// `None` (no opinion) when the check prime is bad for some entry.
fn check_prime_agrees(
    field: PrimeField,
    vectors: &[QVec],
    target: &QVec,
    alpha: &[Rat],
) -> Option<bool> {
    let sys = reduce_system(field, vectors, target)?;
    let alpha_p = alpha
        .iter()
        .map(|r| field.rat(r))
        .collect::<Option<Vec<u64>>>()?;
    let k = target.dim();
    for i in 0..k {
        let mut acc = 0u64;
        for (j, col) in sys.cols.iter().enumerate() {
            acc = field.add(acc, field.mul(alpha_p[j], col[i]));
        }
        if acc != sys.b[i] {
            return Some(false);
        }
    }
    Some(true)
}

/// Reconstruct a vector of rationals from one or two primes' residues
/// (Montgomery form).  `residues` holds per-prime slices aligned with
/// `fields`; reconstruction is attempted from the first prime alone and
/// widened by CRT when that fails.
fn reconstruct_vector(fields: &[PrimeField], residues: &[&[u64]]) -> Option<Vec<Rat>> {
    let len = residues[0].len();
    let mut out = Vec::with_capacity(len);
    for (i, &first_residue) in residues[0].iter().enumerate() {
        let f0 = &fields[0];
        let a0 = f0.lift(first_residue);
        let single = rat_reconstruct(a0 as u128, f0.prime() as u128);
        let reconstructed = match single {
            Some((n, d)) if fields.len() == 1 => Some((n, d)),
            _ if fields.len() >= 2 => {
                let f1 = &fields[1];
                let a1 = f1.lift(residues[1][i]);
                let m = f0.prime() as u128 * f1.prime() as u128;
                let u = crt2(a0, f0.prime(), a1, f1.prime());
                rat_reconstruct(u, m)
            }
            other => other,
        };
        let (n, d) = reconstructed?;
        out.push(rat_of(n, d));
    }
    Some(out)
}

/// Below this cell count a word-size-entry matrix skips the modular
/// prescreen: one tiny exact elimination beats field setup + reduction.
/// Shared by the span and rank tiers so the policy cannot desynchronize.
const PRESCREEN_CELL_CUTOFF: usize = 36;

/// Whether the modular prescreen amortizes its setup on a matrix of
/// `cells` entries: bignum entries always do — that is the whole point —
/// while word-size matrices must be large enough that the exact
/// elimination they avoid costs more than the reduction.
pub(crate) fn prescreen_pays<'a>(cells: usize, mut entries: impl Iterator<Item = &'a Rat>) -> bool {
    cells >= PRESCREEN_CELL_CUTOFF || entries.any(|r| r.bit_size() > 64)
}

/// Modular-prescreened span solve: is `target ∈ span_ℚ{vectors}` and with
/// what coefficients?  See the [module docs](self) for the tier structure;
/// every non-[`Fallback`](SpanOutcome::Fallback) outcome has been verified
/// in exact rational arithmetic.
pub fn span_solve(vectors: &[QVec], target: &QVec) -> SpanOutcome {
    match span_solve_gas(vectors, target, &mut Gas::unlimited()) {
        Ok(outcome) => outcome,
        Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
    }
}

/// [`span_solve`] under fuel metering: the mod-p eliminations charge per
/// row operation, the exact verification of lifted certificates per
/// rational multiply-add.  `Err` interrupts the solve without an answer.
pub fn span_solve_gas(
    vectors: &[QVec],
    target: &QVec,
    gas: &mut Gas,
) -> Result<SpanOutcome, Interrupt> {
    if exact_linalg_forced() || vectors.is_empty() {
        return Ok(SpanOutcome::Fallback);
    }
    if target.is_zero() {
        return Ok(SpanOutcome::Solved(QVec::zeros(vectors.len())));
    }
    if !prescreen_pays(
        target.dim() * vectors.len(),
        target.iter().chain(vectors.iter().flat_map(|v| v.iter())),
    ) {
        return Ok(SpanOutcome::Fallback);
    }

    // Reduce the system mod *both* solver primes at once: one limb walk per
    // entry feeds the two `[u64; 2]` lanes (`Nat::mod_pair_u64`), and the
    // dual elimination below produces both primes' residues in a single
    // Gauss–Jordan pass — no lazy second-prime re-elimination on the
    // instances where single-prime reconstruction cannot express the
    // answer.  The reduction is metered per entry and lane, matching the
    // two per-prime walks it replaces.
    let cells = (target.dim() * (vectors.len() + 1)) as u64;
    gas.steps(2 * cells)?;
    let fields = [PrimeField::new(primes()[0]), PrimeField::new(primes()[1])];
    let Some(sys) = reduce_system_dual(fields, vectors, target) else {
        return Ok(SpanOutcome::Fallback); // every solver prime divides a denominator
    };

    // First elimination without the identity block: the two common
    // outcomes (a solution, or a full-column-rank rejection) never read
    // the left-null certificate, so they should not pay its extra k
    // columns of inner-loop work.
    let elim = eliminate_mod_dual(&sys, gas)?;
    match &elim.solution {
        Some(x0) => {
            // Consistent mod the driving prime: lift the candidate
            // coefficients (both lanes already solved) and verify.
            if let Some(alpha) = lift_dual_and_verify(&sys, &elim, x0, vectors, target, gas)? {
                return Ok(SpanOutcome::Solved(QVec(alpha)));
            }
            // Reconstruction failed: exact elimination on the pruned
            // submatrix named by the mod-p rank profile.  The pivot rows
            // are independent over ℚ (independence mod p lifts), so
            // solving them and verifying the candidate on *all* rows is
            // sound; a verification failure means the profile undercounted
            // and the caller runs the full exact elimination.
            if let Some(alpha) =
                pruned_exact_solve(vectors, target, &elim.pivot_cols, &elim.pivot_rows, gas)?
            {
                return Ok(SpanOutcome::Solved(QVec(alpha)));
            }
            Ok(SpanOutcome::Fallback)
        }
        None => {
            // Full column rank mod p forces full column rank over ℚ
            // (rank only drops under reduction), and the augmented system
            // exceeding it mod p means it exceeds it over ℚ too: the
            // inconsistency is already proved, no lifting required.  This
            // is the fast rejection for tall systems — O(k·n²) machine-word
            // operations total, independent of entry bit size.
            if elim.pivot_cols.len() == vectors.len() {
                return Ok(SpanOutcome::Rejected);
            }
            // Rank-deficient mod p: re-eliminate carrying the identity
            // block, lift the left-null certificate `y⃗` and verify it
            // exactly (its entries can be minor-sized, so this only
            // succeeds on small-coefficient instances; anything else falls
            // back to the exact tier).  Certificates cannot ride the dual
            // lanes — each lane's null row comes from per-lane factors, so
            // the two would be unrelated vectors — hence the per-prime
            // eliminations of `lift_and_verify` stay.
            let first = lane_system(&sys, 0);
            let spare = [sys.dual.f[1].prime()];
            let spare_primes: &[u64] = if sys.lane1_ok { &spare } else { &[] };
            let with_cert = eliminate_mod_p(&first.field, &first.cols, &first.b, true, gas)?;
            if let Some(y0) = &with_cert.certificate {
                if lift_and_verify(&first, spare_primes, &[], vectors, target, y0, false, gas)?
                    .is_some()
                {
                    return Ok(SpanOutcome::Rejected);
                }
            }
            Ok(SpanOutcome::Fallback)
        }
    }
}

/// Lift the dual elimination's solution residues — first from the driving
/// lane alone (most span coefficients are tiny), then CRT-widened with lane
/// 1 when it survived — and run the check-prime probe plus the mandatory
/// exact verification.  Returns the verified coefficients.
fn lift_dual_and_verify(
    sys: &DualSystem,
    elim: &DualElimination,
    x: &[[u64; 2]],
    vectors: &[QVec],
    target: &QVec,
    gas: &mut Gas,
) -> Result<Option<Vec<Rat>>, Interrupt> {
    let lane0: Vec<u64> = x.iter().map(|e| e[0]).collect();
    let lane1: Vec<u64> = x.iter().map(|e| e[1]).collect();
    for width in 1..=2usize {
        if width == 2 && !elim.lane1_ok {
            return Ok(None);
        }
        let fields = &sys.dual.f[..width];
        let slices: [&[u64]; 2] = [&lane0, &lane1];
        let Some(lifted) = reconstruct_vector(fields, &slices[..width]) else {
            continue;
        };
        // The exact verification multiplies every matrix entry once: meter
        // it as one step per cell before paying the bignum work.
        gas.steps((target.dim() * (vectors.len() + 1)) as u64)?;
        let check = PrimeField::new(primes()[2]);
        if check_prime_agrees(check, vectors, target, &lifted) == Some(false) {
            continue;
        }
        if verify_combination(vectors, target, &lifted) {
            return Ok(Some(lifted));
        }
    }
    Ok(None)
}

/// Lift residues from the first prime (widening by CRT with a spare solver
/// prime — reduced and eliminated lazily, only when single-prime
/// reconstruction cannot express the values), then run the appropriate
/// exact verification.
///
/// `residues` are aligned with the `first` system; `profile` is the first
/// prime's pivot-column rank profile, which the second prime's solve is
/// restricted to — both residue vectors must describe the *same* rational
/// vector (the unique solution supported on `profile`) or the CRT
/// combination is meaningless.  `as_solution` selects between the
/// combination identity and the rejection certificate check.  Returns the
/// verified rational vector.
#[allow(clippy::too_many_arguments)]
fn lift_and_verify(
    first: &ReducedSystem,
    spare_primes: &[u64],
    profile: &[usize],
    vectors: &[QVec],
    target: &QVec,
    residues: &[u64],
    as_solution: bool,
    gas: &mut Gas,
) -> Result<Option<Vec<Rat>>, Interrupt> {
    // Single-prime attempt first: most span coefficients are tiny.
    for width in 1..=2usize {
        let (chosen, per_prime): (Vec<PrimeField>, Vec<Vec<u64>>) = match width {
            1 => (vec![first.field], vec![residues.to_vec()]),
            _ => {
                // Reduce mod the first good spare prime.
                let Some(second) = spare_primes
                    .iter()
                    .find_map(|&p| reduce_system(PrimeField::new(p), vectors, target))
                else {
                    return Ok(None);
                };
                let second_res = if as_solution {
                    // Solve restricted to the first prime's pivot columns:
                    // those columns are independent over ℚ, so the rational
                    // solution supported on them (if any) is unique and
                    // both primes' residues are its images.  A different
                    // pivot split mod the spare prime would make the CRT
                    // combine two unrelated vectors.
                    let sub_cols: Vec<Vec<u64>> =
                        profile.iter().map(|&c| second.cols[c].clone()).collect();
                    let elim2 = eliminate_mod_p(&second.field, &sub_cols, &second.b, false, gas)?;
                    if elim2.pivot_cols.len() != profile.len() {
                        return Ok(None); // rank dropped mod the spare prime: incoherent
                    }
                    let Some(x) = elim2.solution else {
                        return Ok(None);
                    };
                    let mut full = vec![0u64; residues.len()];
                    for (pos, &c) in profile.iter().enumerate() {
                        full[c] = x[pos];
                    }
                    full
                } else {
                    match eliminate_mod_p(&second.field, &second.cols, &second.b, true, gas)?
                        .certificate
                    {
                        Some(cert) => cert,
                        None => return Ok(None),
                    }
                };
                if second_res.len() != residues.len() {
                    return Ok(None);
                }
                (
                    vec![first.field, second.field],
                    vec![residues.to_vec(), second_res],
                )
            }
        };
        let slices: Vec<&[u64]> = per_prime.iter().map(|v| v.as_slice()).collect();
        let Some(lifted) = reconstruct_vector(&chosen, &slices) else {
            continue;
        };
        // The exact verification multiplies every matrix entry once: meter
        // it as one step per cell before paying the bignum work.
        gas.steps((target.dim() * (vectors.len() + 1)) as u64)?;
        // Independent check prime first (cheap), then the mandatory exact
        // verification.
        let check = PrimeField::new(primes()[2]);
        if as_solution && check_prime_agrees(check, vectors, target, &lifted) == Some(false) {
            continue;
        }
        let verified = if as_solution {
            verify_combination(vectors, target, &lifted)
        } else {
            verify_rejection(vectors, target, &QVec(lifted.clone()))
        };
        if verified {
            return Ok(Some(lifted));
        }
    }
    Ok(None)
}

/// Exact elimination restricted to the mod-p rank profile: solve the
/// `r × r` system over the pivot rows/columns, zero-fill the free columns,
/// and verify the candidate on every row.  Sound because mod-p independence
/// lifts to ℚ; complete only when the profile did not undercount — the
/// final verification catches that case.
fn pruned_exact_solve(
    vectors: &[QVec],
    target: &QVec,
    pivot_cols: &[usize],
    pivot_rows: &[usize],
    gas: &mut Gas,
) -> Result<Option<Vec<Rat>>, Interrupt> {
    let r = pivot_cols.len();
    if r == 0 || (r == vectors.len() && r == target.dim()) {
        // Nothing to solve, or nothing was pruned (a square full-rank
        // system *is* the pivot subsystem): let the caller run the full
        // exact elimination once instead of twice.  A tall full-column-rank
        // system still benefits — the r×r pivot-row solve replaces a
        // k-row elimination.
        return Ok(None);
    }
    let sub_cols: Vec<QVec> = pivot_cols
        .iter()
        .map(|&c| QVec(pivot_rows.iter().map(|&i| vectors[c][i].clone()).collect()))
        .collect();
    let sub_target = QVec(pivot_rows.iter().map(|&i| target[i].clone()).collect());
    let Some(sub_solution) =
        crate::matrix::QMat::from_cols(&sub_cols).solve_gas(&sub_target, gas)?
    else {
        return Ok(None);
    };
    let mut alpha = vec![Rat::zero(); vectors.len()];
    for (pos, &c) in pivot_cols.iter().enumerate() {
        alpha[c] = sub_solution[pos].clone();
    }
    gas.steps((target.dim() * (vectors.len() + 1)) as u64)?;
    Ok(verify_combination(vectors, target, &alpha).then_some(alpha))
}

/// A certified lower bound on the rank: the rank over `ℤ/p` for the first
/// prime dividing no denominator (`None` when every prime is bad or the
/// hatch is active).  Since non-zero minors mod p are non-zero over ℚ,
/// `rank_p ≤ rank_ℚ` always — so when the bound reaches `min(rows, cols)`
/// the exact rank is proved without any bignum elimination.
pub(crate) fn rank_lower_bound(m: &crate::matrix::QMat) -> Option<usize> {
    if exact_linalg_forced() {
        return None;
    }
    let (rows, cols) = (m.nrows(), m.ncols());
    'prime: for &p in primes().iter() {
        let field = PrimeField::new(p);
        let mut data: Vec<Vec<u64>> = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut row = Vec::with_capacity(cols);
            for j in 0..cols {
                match field.rat(m.get(i, j)) {
                    Some(v) => row.push(v),
                    None => continue 'prime,
                }
            }
            data.push(row);
        }
        let mut rank = 0usize;
        for col in 0..cols {
            if rank >= rows {
                break;
            }
            let Some(sel) = (rank..rows).find(|&r| data[r][col] != 0) else {
                continue;
            };
            data.swap(rank, sel);
            let inv = field.inv(data[rank][col]);
            for r in rank + 1..rows {
                if data[r][col] == 0 {
                    continue;
                }
                let factor = field.mul(data[r][col], inv);
                let (pivot, target) = row_pair(&mut data, rank, r);
                for j in col..cols {
                    if pivot[j] != 0 {
                        target[j] = field.sub(target[j], field.mul(factor, pivot[j]));
                    }
                }
            }
            rank += 1;
        }
        return Some(rank);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_are_prime_and_word_size() {
        for &p in primes() {
            assert!(is_prime_u64(p), "{p} must be prime");
            assert!(p < 1 << 62 && p > 1 << 61);
        }
        assert!(primes().windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn montgomery_field_roundtrip_and_laws() {
        let f = PrimeField::new(primes()[0]);
        for x in [0u64, 1, 2, 7, 1 << 40, f.prime() - 1] {
            assert_eq!(f.lift(f.to_mont(x)), x % f.prime());
        }
        let a = f.to_mont(123_456_789);
        let b = f.to_mont(987_654_321);
        assert_eq!(
            f.lift(f.mul(a, b)),
            mulmod(123_456_789, 987_654_321, f.prime())
        );
        assert_eq!(f.lift(f.add(a, f.sub(b, a))), f.lift(b));
        assert_eq!(f.lift(f.mul(a, f.inv(a))), 1);
        assert_eq!(f.lift(f.one()), 1);
    }

    #[test]
    fn rat_reduction_and_bad_primes() {
        let f = PrimeField::new(primes()[0]);
        // 3/4 mod p: 3·inv(4).
        let v = f.rat(&Rat::from_frac(3, 4)).unwrap();
        assert_eq!(f.lift(f.mul(v, f.to_mont(4))), 3);
        // Negative values wrap.
        let neg = f.rat(&Rat::from_i64(-5)).unwrap();
        assert_eq!(f.lift(neg), f.prime() - 5);
        // A denominator divisible by p is a bad prime.
        let bad = Rat::new(
            Int::one(),
            Int::from_nat(cqdet_bigint::Nat::from_u64(f.prime())),
        );
        assert_eq!(f.rat(&bad), None);
        // …but only for that prime.
        let other = PrimeField::new(primes()[1]);
        assert!(other.rat(&bad).is_some());
    }

    #[test]
    fn rational_reconstruction_roundtrip() {
        let p = primes()[0];
        let f = PrimeField::new(p);
        for (n, d) in [
            (1i64, 2u64),
            (-3, 7),
            (355, 113),
            (0, 1),
            (-1_000_003, 999_983),
        ] {
            let r = Rat::new(Int::from_i64(n), Int::from_i64(d as i64));
            let residue = f.lift(f.rat(&r).unwrap());
            let (rn, rd) = rat_reconstruct(residue as u128, p as u128).unwrap();
            assert_eq!(rat_of(rn, rd), r, "reconstruct {n}/{d}");
        }
    }

    #[test]
    fn crt_combines() {
        let (p1, p2) = (primes()[0], primes()[1]);
        let value = 0x1234_5678_9ABC_DEF0u128 * 3;
        let u = crt2(
            (value % p1 as u128) as u64,
            p1,
            (value % p2 as u128) as u64,
            p2,
        );
        assert_eq!(u, value);
    }

    #[test]
    fn span_solve_agrees_on_small_instances() {
        // Word-size tiny systems short-circuit to the exact tier…
        let small = QVec::from_i64s(&[2, 1, 3]);
        assert_eq!(
            span_solve(std::slice::from_ref(&small), &QVec::from_i64s(&[1, 1, 2])),
            SpanOutcome::Fallback
        );
        // …so scale everything by 2⁹⁶ to engage the modular path; the span
        // relation (and the coefficients) are invariant under common
        // scaling.
        let c = Rat::from_int(Int::from_nat(cqdet_bigint::Nat::one().shl_bits(96)));
        let v1 = QVec::from_i64s(&[2, 1, 3]).scale(&c);
        let v2 = QVec::from_i64s(&[5, 2, 7]).scale(&c);
        let q = QVec::from_i64s(&[1, 1, 2]).scale(&c);
        match span_solve(&[v1.clone(), v2.clone()], &q) {
            SpanOutcome::Solved(alpha) => {
                assert_eq!(alpha, QVec::from_i64s(&[3, -1]));
            }
            other => panic!("expected Solved, got {other:?}"),
        }
        assert_eq!(
            span_solve(std::slice::from_ref(&v1), &q),
            SpanOutcome::Rejected
        );
        assert_eq!(
            span_solve(&[v1], &QVec::zeros(3)),
            SpanOutcome::Solved(QVec::zeros(1))
        );
    }

    #[test]
    fn span_solve_survives_rank_undercount() {
        // Every entry divisible by p₁: the matrix is identically zero mod
        // the first prime, so its rank profile undercounts; the exact
        // verification rejects the bogus lift and the certificate path must
        // not claim a false rejection either.
        // p₁² keeps every entry ≡ 0 (mod p₁) *and* over the word-size
        // threshold, so the modular tier engages instead of short-circuiting
        // to the exact tier.
        let p1 = Rat::from_int(Int::from_nat(cqdet_bigint::Nat::from_u64(primes()[0])));
        let p = p1.mul_ref(&p1);
        let v = QVec(vec![p.clone(), p.mul_ref(&Rat::from_i64(2))]);
        let target = QVec(vec![
            p.mul_ref(&Rat::from_i64(3)),
            p.mul_ref(&Rat::from_i64(6)),
        ]);
        // target = 3·v, but mod p₁ everything is 0 and mod p₂ it is honest.
        match span_solve(std::slice::from_ref(&v), &target) {
            SpanOutcome::Solved(alpha) => assert_eq!(alpha, QVec::from_i64s(&[3])),
            SpanOutcome::Fallback => {} // acceptable: exact tier decides
            SpanOutcome::Rejected => panic!("false rejection must be impossible"),
        }
        // And a genuinely-outside target is never falsely accepted.
        let outside = QVec(vec![p.clone(), p.clone()]);
        match span_solve(&[v], &outside) {
            SpanOutcome::Rejected | SpanOutcome::Fallback => {}
            SpanOutcome::Solved(_) => panic!("false acceptance must be impossible"),
        }
    }

    /// Helper: an integer `QVec` scaled by `2⁹⁶` so the modular tier engages.
    fn scaled(vals: &[i64]) -> QVec {
        let c = Rat::from_int(Int::from_nat(cqdet_bigint::Nat::one().shl_bits(96)));
        QVec::from_i64s(vals).scale(&c)
    }

    #[test]
    fn dual_elimination_matches_per_prime() {
        let vectors = [scaled(&[2, 1, 3]), scaled(&[5, 2, 7])];
        let target = scaled(&[1, 1, 2]);
        let fields = [PrimeField::new(primes()[0]), PrimeField::new(primes()[1])];
        let sys = reduce_system_dual(fields, &vectors, &target).unwrap();
        assert!(sys.lane1_ok);
        let mut gas = Gas::unlimited();
        let dual = eliminate_mod_dual(&sys, &mut gas).unwrap();
        assert!(dual.lane1_ok);
        let x = dual.solution.as_ref().unwrap();
        // Each lane must match the single-prime elimination of its extract.
        for lane in 0..2 {
            let single = lane_system(&sys, lane);
            let elim =
                eliminate_mod_p(&single.field, &single.cols, &single.b, false, &mut gas).unwrap();
            assert_eq!(elim.pivot_cols, dual.pivot_cols, "lane {lane} profile");
            let expect = elim.solution.unwrap();
            let got: Vec<u64> = x.iter().map(|e| e[lane]).collect();
            assert_eq!(got, expect, "lane {lane} residues");
        }
    }

    #[test]
    fn sequential_twin_computes_identical_lanes() {
        let vectors = [scaled(&[3, 1, 4, 1]), scaled(&[5, 9, 2, 6])];
        let target = scaled(&[8, 10, 6, 7]);
        let fields = [PrimeField::new(primes()[0]), PrimeField::new(primes()[1])];
        let sys = reduce_system_dual(fields, &vectors, &target).unwrap();
        let mut gas = Gas::unlimited();
        let fast = eliminate_mod_dual(&sys, &mut gas).unwrap();
        force_sequential_lanes(true);
        let slow = eliminate_mod_dual(&sys, &mut gas);
        force_sequential_lanes(false);
        let slow = slow.unwrap();
        assert_eq!(fast.pivot_cols, slow.pivot_cols);
        assert_eq!(fast.solution, slow.solution);
        assert_eq!(fast.lane1_ok, slow.lane1_ok);
    }

    #[test]
    fn bad_prime_lanes_are_skipped_or_swapped() {
        let shift = Rat::from_int(Int::from_nat(cqdet_bigint::Nat::one().shl_bits(96)));
        // Denominator divisible by the second prime: lane 1 dies, lane 0
        // still solves.
        let bad1 = Rat::new(Int::one(), Int::from_i64(primes()[1] as i64)).mul_ref(&shift);
        let v = QVec(vec![bad1.clone(), bad1.mul_ref(&Rat::from_i64(2))]);
        let t = v.scale(&Rat::from_i64(3));
        match span_solve(&[v], &t) {
            SpanOutcome::Solved(alpha) => assert_eq!(alpha, QVec::from_i64s(&[3])),
            other => panic!("lane-1 bad prime must not block lane 0, got {other:?}"),
        }
        // Denominator divisible by the first prime: lanes swap and solve.
        let bad0 = Rat::new(Int::one(), Int::from_i64(primes()[0] as i64)).mul_ref(&shift);
        let v = QVec(vec![bad0.clone(), bad0.mul_ref(&Rat::from_i64(2))]);
        let t = v.scale(&Rat::from_i64(5));
        match span_solve(&[v], &t) {
            SpanOutcome::Solved(alpha) => assert_eq!(alpha, QVec::from_i64s(&[5])),
            other => panic!("lane-0 bad prime must swap lanes, got {other:?}"),
        }
        // Both solver primes bad: nothing to drive with — exact fallback.
        let both = Rat::new(
            Int::one(),
            Int::from_i64(primes()[0] as i64).mul_ref(&Int::from_i64(primes()[1] as i64)),
        )
        .mul_ref(&shift);
        let v = QVec(vec![both.clone(), both.mul_ref(&Rat::from_i64(2))]);
        let t = v.scale(&Rat::from_i64(7));
        assert_eq!(span_solve(&[v], &t), SpanOutcome::Fallback);
    }

    #[test]
    fn rank_lower_bound_is_sound() {
        let m = crate::matrix::QMat::from_i64_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(rank_lower_bound(&m), Some(2));
        let singular = crate::matrix::QMat::from_i64_rows(&[&[2, 4], &[1, 2]]);
        // The bound may undercount but never overcounts.
        assert!(rank_lower_bound(&singular).unwrap() <= 1);
        let rect = crate::matrix::QMat::from_i64_rows(&[&[1, 2, 3]]);
        assert_eq!(rank_lower_bound(&rect), Some(1));
        // Entries that vanish mod the first prime undercount there but the
        // later primes still see them.
        let p = Rat::from_int(Int::from_nat(cqdet_bigint::Nat::from_u64(primes()[0])));
        let poisoned =
            crate::matrix::QMat::from_rows(&[QVec(vec![p.clone(), p]).scale(&Rat::one())]);
        assert_eq!(
            rank_lower_bound(&poisoned),
            Some(0),
            "first good prime answers"
        );
        assert_eq!(poisoned.rank(), 1, "exact fallback corrects the undercount");
    }
}
