//! Dense matrices over ℚ, Gaussian elimination and the span / null-space
//! machinery used by Lemma 31, Fact 5 and Lemma 46.

use crate::modular::{span_solve_gas, SpanOutcome};
use crate::rat::Rat;
use crate::vector::{dot, QVec};
use cqdet_bigint::{Int, Nat};
use cqdet_parallel::{Gas, Interrupt};
use std::fmt;

/// The multiplier taking `row` to its primitive integer form (integer
/// entries with gcd 1): `lcm(denominators) / gcd(numerators)`.  `None` when
/// the row is all zero or already primitive.
fn primitive_scale(row: &[Rat]) -> Option<Rat> {
    let mut g = Nat::zero();
    let mut l = Nat::one();
    for x in row {
        if x.is_zero() {
            continue;
        }
        g = g.gcd(x.numer().magnitude());
        l = l.lcm(x.denom());
    }
    if g.is_zero() || (g.is_one() && l.is_one()) {
        return None;
    }
    Some(Rat::new(Int::from_nat(l), Int::from_nat(g)))
}

/// A dense `rows × cols` matrix of exact rationals, stored row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct QMat {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl QMat {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        QMat {
            rows,
            cols,
            data: vec![Rat::zero(); rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Rat::one());
        }
        m
    }

    /// Build a matrix from its rows.
    pub fn from_rows(rows: &[QVec]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].dim();
        assert!(
            rows.iter().all(|r| r.dim() == cols),
            "all rows must have the same length"
        );
        QMat {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.0.iter().cloned()).collect(),
        }
    }

    /// Build a matrix from its columns (directly, without the intermediate
    /// row-major copy a transpose-of-`from_rows` would make).
    pub fn from_cols(cols: &[QVec]) -> Self {
        assert!(!cols.is_empty(), "matrix must have at least one column");
        let rows = cols[0].dim();
        assert!(
            cols.iter().all(|c| c.dim() == rows),
            "all columns must have the same length"
        );
        let mut data = Vec::with_capacity(rows * cols.len());
        for i in 0..rows {
            for c in cols {
                data.push(c.0[i].clone());
            }
        }
        QMat {
            rows,
            cols: cols.len(),
            data,
        }
    }

    /// Build a matrix from `i64` entries given as rows.
    pub fn from_i64_rows(rows: &[&[i64]]) -> Self {
        Self::from_rows(&rows.iter().map(|r| QVec::from_i64s(r)).collect::<Vec<_>>())
    }

    /// The Vandermonde matrix `A(i,j) = aᵢ^{j-1}` of Lemma 46.
    pub fn vandermonde(points: &[Rat]) -> Self {
        let k = points.len();
        let mut m = Self::zeros(k, k);
        for (i, a) in points.iter().enumerate() {
            let mut p = Rat::one();
            for j in 0..k {
                m.set(i, j, p.clone());
                p = p.mul_ref(a);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// The entry at row `i`, column `j`.
    pub fn get(&self, i: usize, j: usize) -> &Rat {
        &self.data[i * self.cols + j]
    }

    /// Set the entry at row `i`, column `j`.
    pub fn set(&mut self, i: usize, j: usize, v: Rat) {
        self.data[i * self.cols + j] = v;
    }

    /// The `i`-th row as a vector.
    pub fn row(&self, i: usize) -> QVec {
        QVec(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// The `j`-th column as a vector.
    pub fn col(&self, j: usize) -> QVec {
        assert!(j < self.cols, "column index out of bounds");
        QVec(self.data[j..].iter().step_by(self.cols).cloned().collect())
    }

    /// All rows as vectors.
    pub fn rows_vec(&self) -> Vec<QVec> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// The transpose (single pass, no zero-initialised intermediate).
    pub fn transpose(&self) -> QMat {
        let mut data = Vec::with_capacity(self.data.len());
        for j in 0..self.cols {
            for i in 0..self.rows {
                data.push(self.get(i, j).clone());
            }
        }
        QMat {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    /// Matrix–matrix product.
    pub fn matmul(&self, other: &QMat) -> QMat {
        assert_eq!(self.cols, other.rows, "matrix dimension mismatch");
        let mut out = QMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = Rat::zero();
                for l in 0..self.cols {
                    acc += &self.get(i, l).mul_ref(other.get(l, j));
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Matrix–vector product `M·x⃗`.
    pub fn mul_vec(&self, x: &QVec) -> QVec {
        assert_eq!(self.cols, x.dim(), "matrix/vector dimension mismatch");
        QVec((0..self.rows).map(|i| dot(&self.row(i), x)).collect())
    }

    /// Reduced row echelon form. Returns `(rref, rank, pivot_columns)`.
    ///
    /// Two measures curb coefficient blowup on bignum-entry matrices (hom
    /// counts grow exponentially with structure size, and naive elimination
    /// squares entry sizes per step):
    ///
    /// * the pivot in each column is the candidate of **minimal bit size**,
    ///   not the first non-zero one, so elimination multipliers stay small;
    /// * each pivot row is **normalized by its content** (scaled to
    ///   primitive integer form) before eliminating with it, so common
    ///   factors accumulated in earlier steps never compound.
    ///
    /// Pivot entries are rescaled to 1 in a final pass, so the returned
    /// matrix is the canonical RREF regardless of the internal pivoting.
    pub fn rref(&self) -> (QMat, usize, Vec<usize>) {
        match self.rref_gas(&mut Gas::unlimited()) {
            Ok(r) => r,
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`QMat::rref`] under fuel metering: every elimination row operation
    /// charges the [`Gas`] handle (steps proportional to the row width,
    /// bytes proportional to the multiplier's bit size), so an exhausted
    /// budget or expired deadline interrupts the elimination mid-matrix.
    pub fn rref_gas(&self, gas: &mut Gas) -> Result<(QMat, usize, Vec<usize>), Interrupt> {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..m.cols {
            if pivot_row >= m.rows {
                break;
            }
            // Smallest-bit-size pivot at or below pivot_row.
            let Some(sel) = (pivot_row..m.rows)
                .filter(|&r| !m.get(r, col).is_zero())
                .min_by_key(|&r| m.get(r, col).bit_size())
            else {
                continue;
            };
            m.swap_rows(pivot_row, sel);
            m.normalize_row(pivot_row, col);
            let pivot_value = m.get(pivot_row, col).clone();
            // Eliminate the column everywhere else, row-pair at a time so the
            // inner loop runs on slices instead of index arithmetic.
            for r in 0..m.rows {
                if r == pivot_row || m.get(r, col).is_zero() {
                    continue;
                }
                let (pivot, target) = m.row_pair(pivot_row, r);
                let factor = target[col].div_ref(&pivot_value);
                gas.charge_bytes(factor.bit_size() as u64 / 8);
                gas.steps((pivot.len() - col) as u64)?;
                for j in col..pivot.len() {
                    if !pivot[j].is_zero() {
                        target[j] = target[j].sub_mul_ref(&factor, &pivot[j]);
                    }
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        gas.flush()?;
        // Canonicalize: pivot entries become 1.
        for (row, &col) in pivots.iter().enumerate() {
            let pivot = m.get(row, col).clone();
            if pivot.is_one() {
                continue;
            }
            let inv = pivot.recip();
            for j in col..m.cols {
                if !m.get(row, j).is_zero() {
                    let v = m.get(row, j).mul_ref(&inv);
                    m.set(row, j, v);
                }
            }
        }
        Ok((m, pivot_row, pivots))
    }

    /// Scale row `i` (whose entries before `from` are zero) to primitive
    /// integer form, returning the multiplier applied; no-op (and `None`)
    /// on all-zero or already-primitive rows.
    fn normalize_row(&mut self, i: usize, from: usize) -> Option<Rat> {
        let start = i * self.cols + from;
        let end = (i + 1) * self.cols;
        let scale = primitive_scale(&self.data[start..end])?;
        for x in &mut self.data[start..end] {
            if !x.is_zero() {
                *x = x.mul_ref(&scale);
            }
        }
        Some(scale)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Disjoint `(source, target)` row slices for an elimination step.
    fn row_pair(&mut self, src: usize, dst: usize) -> (&[Rat], &mut [Rat]) {
        debug_assert_ne!(src, dst);
        let cols = self.cols;
        if src < dst {
            let (head, tail) = self.data.split_at_mut(dst * cols);
            (&head[src * cols..(src + 1) * cols], &mut tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(src * cols);
            (&tail[..cols], &mut head[dst * cols..(dst + 1) * cols])
        }
    }

    /// The rank of the matrix.
    ///
    /// Fast path: the mod-p rank is a certified *lower* bound (non-zero
    /// minors survive reduction), so when it reaches `min(rows, cols)` the
    /// exact rank is proved in machine words; only rank-deficient-mod-p
    /// matrices (possibly falsely so) pay the exact elimination.  Tiny
    /// word-size matrices skip the prescreen (`modular::prescreen_pays`,
    /// the policy shared with the span tier) — exact elimination is
    /// already cheaper than the field setup there.
    pub fn rank(&self) -> usize {
        let full = self.rows.min(self.cols);
        if crate::modular::prescreen_pays(self.rows * self.cols, self.data.iter())
            && crate::modular::rank_lower_bound(self) == Some(full)
        {
            return full;
        }
        self.rref().1
    }

    /// The determinant (square matrices only), by Gaussian elimination over
    /// ℚ with the same smallest-pivot / content-normalization policy as
    /// [`QMat::rref`] (row scalings are tracked and divided back out).
    pub fn determinant(&self) -> Rat {
        assert_eq!(self.rows, self.cols, "determinant of a non-square matrix");
        let n = self.rows;
        let mut m = self.clone();
        let mut det = Rat::one();
        // Product of the row-content multipliers applied along the way:
        // det(scaled) = scale_acc · det(self).
        let mut scale_acc = Rat::one();
        for col in 0..n {
            let Some(sel) = (col..n)
                .filter(|&r| !m.get(r, col).is_zero())
                .min_by_key(|&r| m.get(r, col).bit_size())
            else {
                return Rat::zero();
            };
            if sel != col {
                m.swap_rows(col, sel);
                det = det.neg_ref();
            }
            if let Some(scale) = m.normalize_row(col, col) {
                scale_acc = scale_acc.mul_ref(&scale);
            }
            let pivot = m.get(col, col).clone();
            det = det.mul_ref(&pivot);
            let inv = pivot.recip();
            for r in col + 1..n {
                if m.get(r, col).is_zero() {
                    continue;
                }
                let (pivot_row, target) = m.row_pair(col, r);
                let factor = target[col].mul_ref(&inv);
                for j in col..n {
                    if !pivot_row[j].is_zero() {
                        target[j] = target[j].sub_mul_ref(&factor, &pivot_row[j]);
                    }
                }
            }
        }
        det.div_ref(&scale_acc)
    }

    /// Whether this (square) matrix is nonsingular (Definition 38 requires
    /// this of good evaluation matrices).
    ///
    /// Rides the modular fast path of [`QMat::rank`]: a full-rank result
    /// mod a word-size prime proves nonsingularity over ℚ in machine
    /// words, so the common (nonsingular) case never touches bignums.
    pub fn is_nonsingular(&self) -> bool {
        self.rows == self.cols && self.rank() == self.rows
    }

    /// The inverse of a nonsingular square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<QMat> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        // Augment with the identity and run RREF.
        let mut aug = QMat::zeros(n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                aug.set(i, j, self.get(i, j).clone());
            }
            aug.set(i, n + i, Rat::one());
        }
        let (r, _, pivots) = aug.rref();
        // Invertible iff the left block reduces to the identity, i.e. the
        // first n pivots are exactly the first n columns.
        if pivots.len() < n || pivots[..n] != (0..n).collect::<Vec<_>>()[..] {
            return None;
        }
        let mut inv = QMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                inv.set(i, j, r.get(i, n + j).clone());
            }
        }
        Some(inv)
    }

    /// Solve `M·x⃗ = b⃗`; returns one solution if the system is consistent.
    pub fn solve(&self, b: &QVec) -> Option<QVec> {
        match self.solve_gas(b, &mut Gas::unlimited()) {
            Ok(x) => x,
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`QMat::solve`] under fuel metering (see [`QMat::rref_gas`]).
    pub fn solve_gas(&self, b: &QVec, gas: &mut Gas) -> Result<Option<QVec>, Interrupt> {
        assert_eq!(self.rows, b.dim(), "matrix/vector dimension mismatch");
        let mut aug = QMat::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            for j in 0..self.cols {
                aug.set(i, j, self.get(i, j).clone());
            }
            aug.set(i, self.cols, b[i].clone());
        }
        let (r, _, pivots) = aug.rref_gas(gas)?;
        // Inconsistent if a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return Ok(None);
        }
        let mut x = QVec::zeros(self.cols);
        for (row, &col) in pivots.iter().enumerate() {
            x[col] = r.get(row, self.cols).clone();
        }
        Ok(Some(x))
    }

    /// A basis of the null space `{x⃗ : M·x⃗ = 0}`.
    pub fn null_space(&self) -> Vec<QVec> {
        let (r, _, pivots) = self.rref();
        let free: Vec<usize> = (0..self.cols).filter(|c| !pivots.contains(c)).collect();
        let mut basis = Vec::with_capacity(free.len());
        for &f in &free {
            let mut v = QVec::zeros(self.cols);
            v[f] = Rat::one();
            for (row, &col) in pivots.iter().enumerate() {
                v[col] = r.get(row, f).neg_ref();
            }
            basis.push(v);
        }
        basis
    }
}

/// Whether `target ∈ span_ℚ{vectors}` — the heart of the Main Lemma
/// (Lemma 31): `V₀ ⟶_bag q` iff `q⃗ ∈ span{v⃗ | v ∈ V}`.
///
/// The span of the empty set is `{0⃗}`.
pub fn span_contains(vectors: &[QVec], target: &QVec) -> bool {
    if target.is_zero() {
        return true;
    }
    if vectors.is_empty() {
        return false;
    }
    // Solve the system  Σ αᵢ·vᵢ = target  i.e.  A·α = target with columns vᵢ
    // (through the tiered solver — membership is certified either way).
    span_coefficients(vectors, target).is_some()
}

/// If `target ∈ span{vectors}`, return coefficients `α⃗` with
/// `Σ αᵢ·vectorsᵢ = target`.
///
/// Tiered: the modular prescreen ([`crate::modular::span_solve`]) answers
/// over `ℤ/p` in machine words first and lifts its answer back to an
/// exactly verified rational certificate; only uncertifiable instances (bad
/// primes, rank undercounts, reconstruction overflow — and everything when
/// `CQDET_EXACT_LINALG=1` is set) fall back to
/// [`span_coefficients_exact`].  Both paths return exact coefficients.
pub fn span_coefficients(vectors: &[QVec], target: &QVec) -> Option<QVec> {
    match span_coefficients_gas(vectors, target, &mut Gas::unlimited()) {
        Ok(alpha) => alpha,
        Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
    }
}

/// [`span_coefficients`] under fuel metering: both the modular prescreen
/// (per mod-p row operation) and the exact fallback (per rational row
/// operation, plus bit-size byte accounting) charge the [`Gas`] handle, so
/// a budgeted request is interrupted inside whichever tier is running.
pub fn span_coefficients_gas(
    vectors: &[QVec],
    target: &QVec,
    gas: &mut Gas,
) -> Result<Option<QVec>, Interrupt> {
    match span_solve_gas(vectors, target, gas)? {
        SpanOutcome::Solved(alpha) => Ok(Some(alpha)),
        SpanOutcome::Rejected => Ok(None),
        SpanOutcome::Fallback => span_coefficients_exact_gas(vectors, target, gas),
    }
}

/// The pure-`Rat` span solve: one dense exact elimination, no modular
/// prescreen.  This is the oracle the differential tests compare the tiered
/// path against, and the mandatory fallback of [`span_coefficients`].
pub fn span_coefficients_exact(vectors: &[QVec], target: &QVec) -> Option<QVec> {
    match span_coefficients_exact_gas(vectors, target, &mut Gas::unlimited()) {
        Ok(alpha) => alpha,
        Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
    }
}

/// [`span_coefficients_exact`] under fuel metering (see [`QMat::rref_gas`]).
pub fn span_coefficients_exact_gas(
    vectors: &[QVec],
    target: &QVec,
    gas: &mut Gas,
) -> Result<Option<QVec>, Interrupt> {
    if vectors.is_empty() {
        return Ok(if target.is_zero() {
            Some(QVec::zeros(0))
        } else {
            None
        });
    }
    QMat::from_cols(vectors).solve_gas(target, gas)
}

/// Fact 5: given `u⃗₁, …, u⃗ₙ` and `u⃗` with `u⃗ ∉ span{u⃗ᵢ}`, there is a vector
/// `z⃗` orthogonal to every `u⃗ᵢ` but not to `u⃗`.  Returns `None` when
/// `u⃗ ∈ span{u⃗ᵢ}` (in which case no such `z⃗` exists).
pub fn orthogonal_witness(vectors: &[QVec], target: &QVec) -> Option<QVec> {
    let k = target.dim();
    let null = if vectors.is_empty() {
        (0..k).map(|i| QVec::unit(k, i)).collect::<Vec<_>>()
    } else {
        QMat::from_rows(vectors).null_space()
    };
    null.into_iter().find(|z| !dot(z, target).is_zero())
}

impl fmt::Debug for QMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {}", self.row(i))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for QMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column-aligned pretty printer (used by the figure-reproduction examples).
        let strings: Vec<Vec<String>> = (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j).to_string()).collect())
            .collect();
        let widths: Vec<usize> = (0..self.cols)
            .map(|j| strings.iter().map(|r| r[j].len()).max().unwrap_or(0))
            .collect();
        for row in &strings {
            write!(f, "[ ")?;
            for (j, s) in row.iter().enumerate() {
                write!(f, "{:>width$} ", s, width = widths[j])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqdet_bigint::Int;

    fn m(rows: &[&[i64]]) -> QMat {
        QMat::from_i64_rows(rows)
    }

    fn v(vals: &[i64]) -> QVec {
        QVec::from_i64s(vals)
    }

    #[test]
    fn identity_and_matmul() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let i = QMat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
        let b = m(&[&[5, 6], &[7, 8]]);
        assert_eq!(a.matmul(&b), m(&[&[19, 22], &[43, 50]]));
    }

    #[test]
    fn mul_vec() {
        let a = m(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.mul_vec(&v(&[1, 1])), v(&[3, 7]));
        assert_eq!(a.mul_vec(&v(&[0, 0])), v(&[0, 0]));
    }

    #[test]
    fn transpose_and_accessors() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.transpose(), m(&[&[1, 4], &[2, 5], &[3, 6]]));
        assert_eq!(a.row(1), v(&[4, 5, 6]));
        assert_eq!(a.col(2), v(&[3, 6]));
        assert_eq!(QMat::from_cols(&[v(&[1, 4]), v(&[2, 5]), v(&[3, 6])]), a);
    }

    #[test]
    fn rank_and_rref() {
        assert_eq!(m(&[&[1, 2], &[2, 4]]).rank(), 1);
        assert_eq!(m(&[&[1, 2], &[3, 4]]).rank(), 2);
        assert_eq!(m(&[&[0, 0], &[0, 0]]).rank(), 0);
        assert_eq!(m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]).rank(), 2);
        let (r, rank, pivots) = m(&[&[2, 4], &[1, 3]]).rref();
        assert_eq!(rank, 2);
        assert_eq!(pivots, vec![0, 1]);
        assert_eq!(r, QMat::identity(2));
    }

    #[test]
    fn determinant() {
        assert_eq!(m(&[&[1, 2], &[3, 4]]).determinant(), Rat::from_i64(-2));
        assert_eq!(m(&[&[2, 4], &[1, 2]]).determinant(), Rat::zero());
        assert_eq!(
            m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]]).determinant(),
            Rat::from_i64(-3)
        );
        assert_eq!(QMat::identity(4).determinant(), Rat::one());
        // The paper's Example 39 / Figure 1 matrix is singular.
        assert_eq!(m(&[&[2, 4], &[1, 2]]).determinant(), Rat::zero());
    }

    #[test]
    fn inverse() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let inv = a.inverse().unwrap();
        assert_eq!(a.matmul(&inv), QMat::identity(2));
        assert_eq!(inv.matmul(&a), QMat::identity(2));
        assert!(m(&[&[2, 4], &[1, 2]]).inverse().is_none());
        // Example 54's matrix is nonsingular.
        let e54 = m(&[&[1, 4], &[1, 2]]);
        assert!(e54.is_nonsingular());
        let inv = e54.inverse().unwrap();
        assert_eq!(e54.matmul(&inv), QMat::identity(2));
    }

    #[test]
    fn solve_consistent_and_inconsistent() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let x = a.solve(&v(&[5, 11])).unwrap();
        assert_eq!(a.mul_vec(&x), v(&[5, 11]));
        // Singular but consistent.
        let s = m(&[&[1, 2], &[2, 4]]);
        let x = s.solve(&v(&[3, 6])).unwrap();
        assert_eq!(s.mul_vec(&x), v(&[3, 6]));
        // Singular and inconsistent.
        assert!(s.solve(&v(&[3, 7])).is_none());
        // Rectangular, underdetermined.
        let r = m(&[&[1, 1, 1]]);
        let x = r.solve(&v(&[5])).unwrap();
        assert_eq!(r.mul_vec(&x), v(&[5]));
    }

    #[test]
    fn null_space() {
        let a = m(&[&[1, 2], &[2, 4]]);
        let ns = a.null_space();
        assert_eq!(ns.len(), 1);
        assert!(a.mul_vec(&ns[0]).is_zero());
        assert!(!ns[0].is_zero());

        assert!(QMat::identity(3).null_space().is_empty());

        let b = m(&[&[1, 1, 1], &[1, 2, 3]]);
        let ns = b.null_space();
        assert_eq!(ns.len(), 1);
        assert!(b.mul_vec(&ns[0]).is_zero());
    }

    #[test]
    fn span_membership() {
        let v1 = v(&[2, 1, 3]);
        let v2 = v(&[5, 2, 7]);
        // q = 3*v1 - v2 (the relationship in Example 32).
        let q = v(&[1, 1, 2]);
        assert!(span_contains(&[v1.clone(), v2.clone()], &q));
        let coeffs = span_coefficients(&[v1.clone(), v2.clone()], &q).unwrap();
        assert_eq!(coeffs, v(&[3, -1]));
        // Not in span.
        assert!(!span_contains(std::slice::from_ref(&v1), &q));
        // Empty span contains only zero.
        assert!(span_contains(&[], &v(&[0, 0])));
        assert!(!span_contains(&[], &v(&[0, 1])));
        // Zero target is always in span.
        assert!(span_contains(&[v1], &v(&[0, 0, 0])));
    }

    #[test]
    fn fact_5_orthogonal_witness() {
        let v1 = v(&[1, 0, 0]);
        let v2 = v(&[0, 1, 0]);
        let q = v(&[0, 0, 1]);
        let z = orthogonal_witness(&[v1.clone(), v2.clone()], &q).unwrap();
        assert_eq!(dot(&z, &v1), Rat::zero());
        assert_eq!(dot(&z, &v2), Rat::zero());
        assert!(!dot(&z, &q).is_zero());
        // q in span → no witness.
        assert!(orthogonal_witness(&[v(&[1, 0]), v(&[0, 1])], &v(&[2, 3])).is_none());
        // Empty span: any nonzero target has a witness.
        let z = orthogonal_witness(&[], &v(&[0, 7])).unwrap();
        assert!(!dot(&z, &v(&[0, 7])).is_zero());
    }

    #[test]
    fn vandermonde_lemma_46() {
        // Pairwise distinct points → nonsingular.
        let pts: Vec<Rat> = [1i64, 2, 3, 5].iter().map(|&x| Rat::from_i64(x)).collect();
        let m = QMat::vandermonde(&pts);
        assert!(m.is_nonsingular());
        assert_eq!(*m.get(2, 3), Rat::from_i64(27));
        // Repeated point → singular.
        let pts: Vec<Rat> = [1i64, 2, 2].iter().map(|&x| Rat::from_i64(x)).collect();
        assert!(!QMat::vandermonde(&pts).is_nonsingular());
    }

    #[test]
    fn inverse_has_rational_entries() {
        let a = m(&[&[2, 0], &[0, 3]]);
        let inv = a.inverse().unwrap();
        assert_eq!(*inv.get(0, 0), Rat::from_frac(1, 2));
        assert_eq!(*inv.get(1, 1), Rat::from_frac(1, 3));
        assert_eq!(inv.mul_vec(&v(&[4, 9])), v(&[2, 3]));
        assert_eq!(
            inv.mul_vec(&QVec::from_ints(&[Int::from_i64(5), Int::from_i64(5)])),
            QVec(vec![Rat::from_frac(5, 2), Rat::from_frac(5, 3)])
        );
    }
}
