//! Exact rational numbers over [`Int`].

use cqdet_bigint::{Int, Nat, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0` and `gcd(|num|, den) = 1`; zero is `0/1`.
///
/// Arithmetic has a machine-word fast path: when the (reduced) numerators fit
/// `i64` and denominators fit `u64`, sums/products/quotients are computed in
/// `i128`/`u128` with cross-cancellation, entirely without heap allocation —
/// the components land back in the inline representation of
/// [`Nat`](cqdet_bigint::Nat).  Overflow falls back to the bigint path.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: Int,
    den: Nat,
}

/// Euclidean GCD on `u128` (`gcd(0, x) = x`).
#[inline]
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The `(numerator, denominator)` of a small rational: numerator in `i64`
/// range, denominator in `u64` range — bounds chosen so that cross products
/// stay inside `i128`/`u128`.
#[inline]
fn small(r: &Rat) -> Option<(i128, u128)> {
    let n = r.num.to_i64()? as i128;
    let d = r.den.to_u64()? as u128;
    Some((n, d))
}

/// Build a rational from parts already in lowest terms with `den > 0`.
#[inline]
fn from_reduced(num: i128, den: u128) -> Rat {
    debug_assert!(den > 0);
    debug_assert!(num != 0 || den == 1);
    Rat {
        num: Int::from_i128(num),
        den: Nat::from_u128(den),
    }
}

/// `a/b + c/d` over machine words (inputs reduced); `None` on i128 overflow.
#[inline]
fn add_small(a: i128, b: u128, c: i128, d: u128) -> Option<Rat> {
    // Knuth TAOCP 4.5.1: with g = gcd(b, d) the sum is
    // (a·(d/g) + c·(b/g)) / (b·(d/g)), and only gcd(t, g) remains to cancel.
    let g = gcd_u128(b, d);
    let (b1, d1) = (b / g, d / g);
    let t = a
        .checked_mul(d1 as i128)?
        .checked_add(c.checked_mul(b1 as i128)?)?;
    let g2 = gcd_u128(t.unsigned_abs(), g);
    Some(from_reduced(t / g2 as i128, b1 * (d / g2)))
}

impl Rat {
    /// The rational zero.
    pub fn zero() -> Self {
        Rat {
            num: Int::zero(),
            den: Nat::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        Rat {
            num: Int::one(),
            den: Nat::one(),
        }
    }

    /// Construct `num / den`, reducing to lowest terms. Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        // Machine-word fast path: reduce in u128 without touching the heap.
        if let (Some(n), Some(d)) = (num.to_i128(), den.to_i128()) {
            if n == 0 {
                return Rat::zero();
            }
            let neg = (n < 0) != (d < 0);
            let (n_abs, d_abs) = (n.unsigned_abs(), d.unsigned_abs());
            let g = gcd_u128(n_abs, d_abs);
            let n_red_abs = n_abs / g;
            if n_red_abs <= i128::MAX as u128 {
                let n_red = n_red_abs as i128;
                return from_reduced(if neg { -n_red } else { n_red }, d_abs / g);
            }
        }
        let mut num = num;
        let mut den_nat = den.magnitude().clone();
        if den.is_negative() {
            num = num.neg_ref();
        }
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.magnitude().gcd(&den_nat);
        if !g.is_one() {
            num = Int::from_sign_mag(num.sign(), num.magnitude().divrem(&g).0);
            den_nat = den_nat.divrem(&g).0;
        }
        Rat { num, den: den_nat }
    }

    /// Construct from an integer.
    pub fn from_int(v: Int) -> Self {
        Rat {
            num: v,
            den: Nat::one(),
        }
    }

    /// Construct from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        Rat::from_int(Int::from_i64(v))
    }

    /// Construct from a pair of `i64`s.
    pub fn from_frac(num: i64, den: i64) -> Self {
        Rat::new(Int::from_i64(num), Int::from_i64(den))
    }

    /// Construct from a [`Nat`].
    pub fn from_nat(v: Nat) -> Self {
        Rat::from_int(Int::from_nat(v))
    }

    /// Bytes of heap storage owned by this value (zero on the machine-word
    /// fast path).  Feeds the byte-accurate cost accounting of the
    /// governed caches.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.num.heap_bytes() + self.den.heap_bytes()
    }

    /// The (reduced) numerator.
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// The (reduced, strictly positive) denominator.
    pub fn denom(&self) -> &Nat {
        &self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether the value is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether the value is non-negative.
    pub fn is_non_negative(&self) -> bool {
        !self.num.is_negative()
    }

    /// Whether the value is an integer (denominator one).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// If the value is an integer, return it.
    pub fn to_int(&self) -> Option<Int> {
        if self.is_integer() {
            Some(self.num.clone())
        } else {
            None
        }
    }

    /// If the value is a non-negative integer, return it as a [`Nat`].
    pub fn to_nat(&self) -> Option<Nat> {
        self.to_int().and_then(|i| i.to_nat())
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Addition.
    pub fn add_ref(&self, other: &Rat) -> Rat {
        if let (Some((a, b)), Some((c, d))) = (small(self), small(other)) {
            if let Some(r) = add_small(a, b, c, d) {
                return r;
            }
        }
        // num/den + num'/den' = (num*den' + num'*den) / (den*den')
        let num = self.num.mul_ref(&Int::from_nat(other.den.clone()))
            + other.num.mul_ref(&Int::from_nat(self.den.clone()));
        let den = Int::from_nat(self.den.mul_ref(&other.den));
        Rat::new(num, den)
    }

    /// Subtraction.
    pub fn sub_ref(&self, other: &Rat) -> Rat {
        if let (Some((a, b)), Some((c, d))) = (small(self), small(other)) {
            if let Some(r) = add_small(a, b, -c, d) {
                return r;
            }
        }
        self.add_ref(&other.neg_ref())
    }

    /// Multiplication.
    pub fn mul_ref(&self, other: &Rat) -> Rat {
        if let (Some((a, b)), Some((c, d))) = (small(self), small(other)) {
            // Cross-cancel first; the reduced factors cannot overflow.
            let g1 = gcd_u128(a.unsigned_abs(), d).max(1);
            let g2 = gcd_u128(c.unsigned_abs(), b).max(1);
            let num = (a / g1 as i128) * (c / g2 as i128);
            let den = (b / g2) * (d / g1);
            if num == 0 {
                return Rat::zero();
            }
            return from_reduced(num, den);
        }
        Rat::new(
            self.num.mul_ref(&other.num),
            Int::from_nat(self.den.mul_ref(&other.den)),
        )
    }

    /// `self + f·s` — fused multiply-add, see [`Rat::sub_mul_ref`].
    pub fn add_mul_ref(&self, f: &Rat, s: &Rat) -> Rat {
        self.fma_ref(f, s, false)
    }

    /// `self − f·s` — fused multiply-subtract.
    ///
    /// The separate `sub_ref(&f.mul_ref(s))` shape normalizes twice (once
    /// for the product, once for the difference) and materializes the
    /// product temporary; fusing keeps the elimination inner loops
    /// ([`crate::QMat::rref`], [`crate::IncrementalBasis`], the span
    /// verifier) at one gcd pass and zero intermediates per cell update.
    pub fn sub_mul_ref(&self, f: &Rat, s: &Rat) -> Rat {
        self.fma_ref(f, s, true)
    }

    /// Shared body of the fused multiply-add/subtract operators.
    fn fma_ref(&self, f: &Rat, s: &Rat, subtract: bool) -> Rat {
        if let (Some((a, b)), Some((c, d)), Some((e, g))) = (small(self), small(f), small(s)) {
            // The cross-cancelled product of two reduced small rationals is
            // exact in i128/u128 (numerators within i64, denominators within
            // u64), and stays reduced — so it feeds `add_small` directly.
            let g1 = gcd_u128(c.unsigned_abs(), g).max(1);
            let g2 = gcd_u128(e.unsigned_abs(), d).max(1);
            let pn = (c / g1 as i128) * (e / g2 as i128);
            let pd = (d / g2) * (g / g1);
            if pn == 0 {
                return self.clone();
            }
            let pn = if subtract { -pn } else { pn };
            if let Some(r) = add_small(a, b, pn, pd) {
                return r;
            }
        }
        if f.is_zero() || s.is_zero() {
            return self.clone();
        }
        let fs_den = f.den.mul_ref(&s.den);
        let prod = f
            .num
            .mul_ref(&s.num)
            .mul_ref(&Int::from_nat(self.den.clone()));
        let lhs = self.num.mul_ref(&Int::from_nat(fs_den.clone()));
        let num = if subtract {
            lhs.sub_ref(&prod)
        } else {
            lhs.add_ref(&prod)
        };
        Rat::new(num, Int::from_nat(self.den.mul_ref(&fs_den)))
    }

    /// Division; panics if `other` is zero.
    pub fn div_ref(&self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "division by zero rational");
        if let (Some((a, b)), Some((c, d))) = (small(self), small(other)) {
            // (a/b) / (c/d) = (a·d) / (b·c), cross-cancelled and sign-fixed.
            let neg = (a < 0) != (c < 0);
            let g1 = gcd_u128(a.unsigned_abs(), c.unsigned_abs()).max(1);
            let g3 = gcd_u128(d, b);
            let num_abs = (a.unsigned_abs() / g1) * (d / g3);
            let den = (b / g3) * (c.unsigned_abs() / g1);
            if num_abs == 0 {
                return Rat::zero();
            }
            if num_abs <= i128::MAX as u128 {
                let num = num_abs as i128;
                return from_reduced(if neg { -num } else { num }, den);
            }
        }
        Rat::new(
            self.num.mul_ref(&Int::from_nat(other.den.clone())),
            other.num.mul_ref(&Int::from_nat(self.den.clone())),
        )
    }

    /// Negation.
    pub fn neg_ref(&self) -> Rat {
        Rat {
            num: self.num.neg_ref(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse; panics if zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero rational");
        Rat::new(Int::from_nat(self.den.clone()), self.num.clone())
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Integer power with possibly negative exponent.
    ///
    /// `0^0 = 1` (the paper's convention); `0^negative` panics.
    pub fn pow_i64(&self, exp: i64) -> Rat {
        if exp == 0 {
            return Rat::one();
        }
        if self.is_zero() {
            assert!(exp > 0, "zero rational raised to a negative power");
            return Rat::zero();
        }
        let base = if exp < 0 { self.recip() } else { self.clone() };
        let e = exp.unsigned_abs();
        Rat {
            num: base.num.pow(e),
            den: base.den.pow(e),
        }
    }

    /// The combined bit length of numerator and denominator — the pivot
    /// selection weight of the elimination kernels ([`crate::QMat::rref`],
    /// [`crate::IncrementalBasis`]): eliminating with the smallest pivot
    /// available keeps the multipliers, and hence the coefficient growth,
    /// down.  Zero has bit size 1 (its denominator).
    pub fn bit_size(&self) -> usize {
        self.num.magnitude().bit_len() + self.den.bit_len()
    }

    /// Floor: the greatest integer `≤ self`.
    pub fn floor(&self) -> Int {
        let (q, r) = self.num.divrem(&Int::from_nat(self.den.clone()));
        if r.is_zero() || !self.num.is_negative() {
            q
        } else {
            q - Int::one()
        }
    }

    /// Ceiling: the least integer `≥ self`.
    pub fn ceil(&self) -> Int {
        self.neg_ref().floor().neg_ref()
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        if let (Some((a, b)), Some((c, d))) = (small(self), small(other)) {
            if let (Some(l), Some(r)) = (a.checked_mul(d as i128), c.checked_mul(b as i128)) {
                return l.cmp(&r);
            }
        }
        let lhs = self.num.mul_ref(&Int::from_nat(other.den.clone()));
        let rhs = other.num.mul_ref(&Int::from_nat(self.den.clone()));
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::from_i64(v)
    }
}

impl From<Int> for Rat {
    fn from(v: Int) -> Self {
        Rat::from_int(v)
    }
}

impl From<Nat> for Rat {
    fn from(v: Nat) -> Self {
        Rat::from_nat(v)
    }
}

/// Parse a rational from `"a"` or `"a/b"` decimal notation.
impl FromStr for Rat {
    type Err = cqdet_bigint::ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => Ok(Rat::from_int(Int::from_decimal(s)?)),
            Some((n, d)) => Ok(Rat::new(Int::from_decimal(n)?, Int::from_decimal(d)?)),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.neg_ref()
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.neg_ref()
    }
}

macro_rules! forward_binop_rat {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$impl_method(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                self.$impl_method(rhs)
            }
        }
        impl $trait<&Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                self.$impl_method(rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$impl_method(&rhs)
            }
        }
    };
}

forward_binop_rat!(Add, add, add_ref);
forward_binop_rat!(Sub, sub, sub_ref);
forward_binop_rat!(Mul, mul, mul_ref);
forward_binop_rat!(Div, div, div_ref);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = self.sub_ref(rhs);
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_mul_add_matches_unfused() {
        let big = Rat::from_int(Int::from_nat(Nat::one().shl_bits(100)) + Int::from_i64(7));
        let vals = [
            Rat::zero(),
            Rat::one(),
            Rat::from_frac(-3, 7),
            Rat::from_frac(22, 6),
            Rat::from_i64(i64::MAX),
            big.recip(),
            big,
        ];
        for a in &vals {
            for f in &vals {
                for s in &vals {
                    assert_eq!(a.add_mul_ref(f, s), a.add_ref(&f.mul_ref(s)));
                    assert_eq!(a.sub_mul_ref(f, s), a.sub_ref(&f.mul_ref(s)));
                }
            }
        }
    }

    fn r(n: i64, d: i64) -> Rat {
        Rat::from_frac(n, d)
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(6, -4).to_string(), "-3/2");
        assert_eq!(r(6, 3).to_string(), "2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(r(1, 2) + r(-1, 2), Rat::zero());
        assert_eq!(-r(3, 7), r(-3, 7));
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(2, 3).pow_i64(3), r(8, 27));
        assert_eq!(r(2, 3).pow_i64(-2), r(9, 4));
        assert_eq!(r(5, 7).pow_i64(0), Rat::one());
        assert_eq!(Rat::zero().pow_i64(0), Rat::one());
        assert_eq!(Rat::zero().pow_i64(3), Rat::zero());
        assert_eq!(r(-2, 3).pow_i64(2), r(4, 9));
        assert_eq!(r(-2, 3).pow_i64(3), r(-8, 27));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Rat::zero());
        assert!(r(7, 3) > r(2, 1));
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn predicates_and_conversions() {
        assert!(r(3, 1).is_integer());
        assert!(!r(3, 2).is_integer());
        assert_eq!(r(6, 2).to_int(), Some(Int::from_i64(3)));
        assert_eq!(r(-6, 2).to_nat(), None);
        assert_eq!(r(6, 2).to_nat(), Some(Nat::from_u64(3)));
        assert!(r(-1, 2).is_negative());
        assert!(r(1, 2).is_positive());
        assert!(Rat::zero().is_non_negative());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), Int::from_i64(3));
        assert_eq!(r(7, 2).ceil(), Int::from_i64(4));
        assert_eq!(r(-7, 2).floor(), Int::from_i64(-4));
        assert_eq!(r(-7, 2).ceil(), Int::from_i64(-3));
        assert_eq!(r(6, 2).floor(), Int::from_i64(3));
        assert_eq!(r(6, 2).ceil(), Int::from_i64(3));
        assert_eq!(r(-6, 2).floor(), Int::from_i64(-3));
    }

    #[test]
    fn parse_display() {
        assert_eq!("3/4".parse::<Rat>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rat>().unwrap(), r(-3, 4));
        assert_eq!("5".parse::<Rat>().unwrap(), r(5, 1));
        assert_eq!("6/-4".parse::<Rat>().unwrap(), r(-3, 2));
        assert!("a/b".parse::<Rat>().is_err());
    }

    #[test]
    fn big_values() {
        let a: Rat = "123456789123456789123456789/987654321987654321"
            .parse()
            .unwrap();
        let b = a.recip();
        assert_eq!(a.mul_ref(&b), Rat::one());
        let c = a.pow_i64(5).mul_ref(&a.pow_i64(-5));
        assert_eq!(c, Rat::one());
    }
}
