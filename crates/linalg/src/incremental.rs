//! Tier 2 of the exact linear-algebra stack: an **online echelon form**.
//!
//! The batch regimes of the ROADMAP north star decide many span questions
//! against the *same* generating set (Definition 29 vectors of a shared
//! view pool) with varying targets, and the one-shot pipeline usually sees
//! the target enter the span long before every generator has been
//! eliminated.  A monolithic `QMat::solve` per call throws both structures
//! away; an [`IncrementalBasis`] keeps them:
//!
//! * generators are **inserted one at a time**, each reduced against the
//!   rows already present (fully reduced / Gauss–Jordan invariant, so
//!   insertion order never degrades later reductions);
//! * every row carries its **coordinates** over the inserted generators,
//!   so span membership and the certificate coefficients come out of the
//!   same reduction — no second elimination;
//! * [`IncrementalBasis::solve_extend`] feeds generators lazily and stops
//!   as soon as the target's residual hits zero (**early exit**): span
//!   questions over a planted workload never eliminate the columns after
//!   the spanning prefix, and a session-cached basis re-eliminates
//!   *nothing* for the second and later targets.
//!
//! Everything is exact `Rat` arithmetic — this tier needs no verification
//! step, it *is* the exact computation; the modular tier
//! ([`crate::modular`]) sits in front of the dense one-shot solves instead.

use crate::rat::Rat;
use crate::vector::QVec;
use cqdet_parallel::{Gas, Interrupt};

/// One reduced row of the echelon form.
struct EchelonRow {
    /// The pivot column: `vec[pivot] = 1`, and every other row (and every
    /// reduced residual) is zero there.
    pivot: usize,
    /// The row itself, fully reduced against all other rows.
    vec: QVec,
    /// `vec = Σ coords[i] · generatorᵢ` over the inserted generators
    /// (entries past the stored length are zero).
    coords: Vec<Rat>,
}

/// An online echelon form over ℚ with per-row generator coordinates.  See
/// the [module docs](self).
pub struct IncrementalBasis {
    dim: usize,
    /// Number of generators inserted so far (including dependent ones).
    inserted: usize,
    rows: Vec<EchelonRow>,
}

/// `acc[..] += f · src[..]`, growing `acc` with zeros as needed (subtract
/// by passing `f.neg_ref()`).
fn axpy(acc: &mut Vec<Rat>, f: &Rat, src: &[Rat]) {
    if acc.len() < src.len() {
        acc.resize(src.len(), Rat::zero());
    }
    for (a, s) in acc.iter_mut().zip(src) {
        if !s.is_zero() {
            *a = a.add_mul_ref(f, s);
        }
    }
}

/// `vec -= f · src` componentwise, skipping zero source entries — the one
/// elimination inner loop every reduction in this module shares.
fn sub_scaled(vec: &mut QVec, f: &Rat, src: &QVec) {
    for (t, s) in vec.0.iter_mut().zip(src.0.iter()) {
        if !s.is_zero() {
            *t = t.sub_mul_ref(f, s);
        }
    }
}

/// Fuel for one row operation against a row of `width` entries whose
/// elimination factor is `f`: `width` steps of work, plus the factor's bit
/// size as the byte proxy for the coefficient growth it causes.
#[inline]
fn charge_row_op(gas: &mut Gas, f: &Rat, width: usize) -> Result<(), Interrupt> {
    gas.charge_bytes(f.bit_size() as u64 / 8);
    gas.steps(width as u64)
}

impl IncrementalBasis {
    /// An empty basis in ambient dimension `dim`.
    pub fn new(dim: usize) -> IncrementalBasis {
        IncrementalBasis {
            dim,
            inserted: 0,
            rows: Vec::new(),
        }
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of generators inserted so far.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// Whether no generator has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// The rank of the inserted generators.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Bytes of heap storage owned by this basis: every row's vector and
    /// coordinate buffers, limb storage included.  Feeds the byte-accurate
    /// cost accounting of the governed span cache — echelon rows over
    /// bigint rationals are by far its heaviest entries.
    pub fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|row| {
                row.vec.heap_bytes()
                    + row.coords.capacity() * std::mem::size_of::<Rat>()
                    + row.coords.iter().map(Rat::heap_bytes).sum::<usize>()
            })
            .sum::<usize>()
            + self.rows.capacity() * std::mem::size_of::<EchelonRow>()
    }

    /// Export the reduced rows as `(pivot, vec, coords)` triples (cloned),
    /// for the warm-start snapshot.  The inverse of
    /// [`IncrementalBasis::from_parts`].
    pub fn export_rows(&self) -> Vec<(usize, QVec, Vec<Rat>)> {
        self.rows
            .iter()
            .map(|row| (row.pivot, row.vec.clone(), row.coords.clone()))
            .collect()
    }

    /// Rebuild a basis from snapshot parts, validating every structural
    /// invariant the reduction algorithms rely on; returns `None` on any
    /// violation (the snapshot loader then discards the entry and cold
    /// starts that key).  Checked: distinct in-range pivots, row dimension,
    /// unit pivot entries with zeros at every *other* row's pivot column
    /// (the Gauss–Jordan full-reduction invariant), rank and coordinate
    /// lengths bounded by `inserted`.
    pub fn from_parts(
        dim: usize,
        inserted: usize,
        rows: Vec<(usize, QVec, Vec<Rat>)>,
    ) -> Option<IncrementalBasis> {
        if rows.len() > inserted {
            return None;
        }
        let mut seen = vec![false; dim];
        for (pivot, vec, coords) in &rows {
            if *pivot >= dim || seen[*pivot] || vec.dim() != dim || coords.len() > inserted {
                return None;
            }
            seen[*pivot] = true;
        }
        for (pivot, vec, _) in &rows {
            if !vec.0[*pivot].is_one() {
                return None;
            }
            for (other_pivot, _, _) in &rows {
                if other_pivot != pivot && !vec.0[*other_pivot].is_zero() {
                    return None;
                }
            }
        }
        Some(IncrementalBasis {
            dim,
            inserted,
            rows: rows
                .into_iter()
                .map(|(pivot, vec, coords)| EchelonRow { pivot, vec, coords })
                .collect(),
        })
    }

    /// Insert one generator; returns `true` when it enlarged the span.
    pub fn insert(&mut self, v: &QVec) -> bool {
        match self.insert_indexed(v, &mut Gas::unlimited()) {
            Ok(idx) => idx.is_some(),
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`IncrementalBasis::insert`] returning the new row's index, metered:
    /// every row operation charges the [`Gas`] handle, so an exhausted
    /// budget or expired deadline stops the elimination mid-insert.  On
    /// `Err` the basis is *consistent*: either untouched (interrupt during
    /// the initial reduction) or with the insert fully completed (interrupt
    /// during the Jordan restore — the bounded tail is finished unmetered),
    /// so a session-cached basis stays usable after an aborted request.
    fn insert_indexed(&mut self, v: &QVec, gas: &mut Gas) -> Result<Option<usize>, Interrupt> {
        assert_eq!(v.dim(), self.dim, "generator dimension mismatch");
        let mut vec = v.clone();
        let mut coords = vec![Rat::zero(); self.inserted + 1];
        coords[self.inserted] = Rat::one();
        for row in &self.rows {
            let f = vec.0[row.pivot].clone();
            if f.is_zero() {
                continue;
            }
            charge_row_op(gas, &f, self.dim + row.coords.len())?;
            sub_scaled(&mut vec, &f, &row.vec);
            axpy(&mut coords, &f.neg_ref(), &row.coords);
        }
        self.inserted += 1;
        // Pivot: the non-zero entry of minimal bit size, so the Jordan
        // updates below multiply by the smallest numbers available.
        let Some(pivot) = (0..self.dim)
            .filter(|&j| !vec.0[j].is_zero())
            .min_by_key(|&j| vec.0[j].bit_size())
        else {
            return Ok(None);
        };
        let inv = vec.0[pivot].recip();
        for t in vec.0.iter_mut() {
            if !t.is_zero() {
                *t = t.mul_ref(&inv);
            }
        }
        for c in coords.iter_mut() {
            if !c.is_zero() {
                *c = c.mul_ref(&inv);
            }
        }
        // Restore the full-reduction invariant on the existing rows.  Fuel
        // is pre-charged per row *before* mutating it: once a row operation
        // starts it always completes, keeping the echelon invariant intact
        // even when the interrupt lands mid-restore…
        let mut restored = 0usize;
        let mut interrupted = None;
        for row in &mut self.rows {
            let f = row.vec.0[pivot].clone();
            if f.is_zero() {
                restored += 1;
                continue;
            }
            if let Err(stop) = charge_row_op(gas, &f, self.dim + coords.len()) {
                interrupted = Some(stop);
                break;
            }
            sub_scaled(&mut row.vec, &f, &vec);
            axpy(&mut row.coords, &f.neg_ref(), &coords);
            restored += 1;
        }
        if let Some(stop) = interrupted {
            // …and the rows not yet reduced against the new pivot are
            // finished unmetered (bounded tail work), because a half-restored
            // basis would silently corrupt every later answer.
            for row in self.rows.iter_mut().skip(restored) {
                let f = row.vec.0[pivot].clone();
                if f.is_zero() {
                    continue;
                }
                sub_scaled(&mut row.vec, &f, &vec);
                axpy(&mut row.coords, &f.neg_ref(), &coords);
            }
            self.rows.push(EchelonRow { pivot, vec, coords });
            return Err(stop);
        }
        self.rows.push(EchelonRow { pivot, vec, coords });
        Ok(Some(self.rows.len() - 1))
    }

    /// Reduce `target` against the current rows: returns the residual and
    /// coordinates with `target = Σ coordsᵢ·generatorᵢ + residual`.
    fn reduce(&self, target: &QVec, gas: &mut Gas) -> Result<(QVec, Vec<Rat>), Interrupt> {
        assert_eq!(target.dim(), self.dim, "target dimension mismatch");
        let mut residual = target.clone();
        let mut coords = vec![Rat::zero(); self.inserted];
        for row in &self.rows {
            let f = residual.0[row.pivot].clone();
            if f.is_zero() {
                continue;
            }
            charge_row_op(gas, &f, self.dim + row.coords.len())?;
            sub_scaled(&mut residual, &f, &row.vec);
            axpy(&mut coords, &f, &row.coords);
        }
        Ok((residual, coords))
    }

    /// Whether `target` lies in the span of the inserted generators.
    pub fn contains(&self, target: &QVec) -> bool {
        match self.reduce(target, &mut Gas::unlimited()) {
            Ok((residual, _)) => residual.is_zero(),
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// Coefficients over the inserted generators when `target` is in their
    /// span (`target = Σ αᵢ·generatorᵢ`, `α` of length [`Self::len`]).
    pub fn solve(&self, target: &QVec) -> Option<QVec> {
        let (residual, mut coords) = match self.reduce(target, &mut Gas::unlimited()) {
            Ok(r) => r,
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        };
        if !residual.is_zero() {
            return None;
        }
        coords.resize(self.inserted, Rat::zero());
        Some(QVec(coords))
    }

    /// [`Self::solve`] with lazy insertion: reduce `target` against the
    /// current rows, and while the residual is non-zero keep inserting
    /// generators from `feed` (in order), re-reducing the residual by each
    /// newly created row.  Stops — **early exit** — the moment the target
    /// enters the span; generators never fed (and fed-but-dependent ones
    /// past the solution) simply get coefficient zero.
    ///
    /// Returns coefficients over *all* generators inserted so far (length
    /// [`Self::len`] after the call), or `None` when `feed` was exhausted
    /// with a non-zero residual.
    pub fn solve_extend(&mut self, target: &QVec, feed: &[QVec]) -> Option<QVec> {
        match self.solve_extend_gas(target, feed, &mut Gas::unlimited()) {
            Ok(answer) => answer,
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`Self::solve_extend`] under fuel metering: every exact row operation
    /// (reductions, insertions, Jordan restores) charges the [`Gas`] handle.
    /// `Err` aborts with the basis left consistent — generators inserted
    /// before the interrupt stay inserted (see [`Self::insert`]'s metered
    /// contract), so a session cache survives an exhausted request.
    pub fn solve_extend_gas(
        &mut self,
        target: &QVec,
        feed: &[QVec],
        gas: &mut Gas,
    ) -> Result<Option<QVec>, Interrupt> {
        let (mut residual, mut coords) = self.reduce(target, gas)?;
        for v in feed {
            if residual.is_zero() {
                break;
            }
            if let Some(idx) = self.insert_indexed(v, gas)? {
                let row = &self.rows[idx];
                let f = residual.0[row.pivot].clone();
                if !f.is_zero() {
                    charge_row_op(gas, &f, self.dim + row.coords.len())?;
                    sub_scaled(&mut residual, &f, &row.vec);
                    axpy(&mut coords, &f, &row.coords);
                }
            }
        }
        // Kernel-exit flush: tail work below the flush granularity (and all
        // pending byte charges) must hit the shared ledger before returning.
        gas.flush()?;
        if !residual.is_zero() {
            return Ok(None);
        }
        coords.resize(self.inserted, Rat::zero());
        Ok(Some(QVec(coords)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[i64]) -> QVec {
        QVec::from_i64s(vals)
    }

    /// `Σ αᵢ·gᵢ` over the first `alpha.len()` generators.
    fn combine(generators: &[QVec], alpha: &QVec) -> QVec {
        let mut acc = QVec::zeros(generators[0].dim());
        for (a, g) in alpha.iter().zip(generators) {
            acc = &acc + &g.scale(a);
        }
        acc
    }

    #[test]
    fn rank_and_membership() {
        let mut b = IncrementalBasis::new(3);
        assert!(b.is_empty() && b.rank() == 0);
        assert!(b.insert(&v(&[1, 2, 3])));
        assert!(b.insert(&v(&[0, 1, 1])));
        assert!(!b.insert(&v(&[1, 3, 4])), "dependent generator");
        assert_eq!(b.rank(), 2);
        assert_eq!(b.len(), 3);
        assert!(b.contains(&v(&[2, 5, 7])));
        assert!(!b.contains(&v(&[0, 0, 1])));
    }

    #[test]
    fn solve_reconstructs_targets() {
        let generators = [v(&[2, 1, 3]), v(&[5, 2, 7]), v(&[1, 1, 2])];
        let mut b = IncrementalBasis::new(3);
        for g in &generators {
            b.insert(g);
        }
        let target = v(&[1, 1, 2]);
        let alpha = b.solve(&target).unwrap();
        assert_eq!(alpha.dim(), 3);
        assert_eq!(combine(&generators, &alpha), target);
        assert!(b.solve(&v(&[0, 0, 1])).is_none());
    }

    #[test]
    fn solve_extend_exits_early() {
        let generators = vec![v(&[1, 0, 0]), v(&[0, 1, 0]), v(&[0, 0, 1])];
        let mut b = IncrementalBasis::new(3);
        // Target spanned by the first generator alone: only one insert.
        let alpha = b.solve_extend(&v(&[3, 0, 0]), &generators).unwrap();
        assert_eq!(b.len(), 1, "early exit after the first generator");
        assert_eq!(alpha, v(&[3]));
        // A later target resumes feeding where the basis left off.
        let alpha = b
            .solve_extend(&v(&[1, 2, 0]), &generators[b.len()..])
            .unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(alpha, v(&[1, 2]));
        // Exhausting the feed without spanning reports None.
        assert!(b
            .solve_extend(&v(&[1, 1, 7]), &generators[b.len()..])
            .is_some());
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn solve_extend_reports_out_of_span() {
        let mut b = IncrementalBasis::new(2);
        assert!(b
            .solve_extend(&v(&[1, 1]), &[v(&[1, 0]), v(&[2, 0])])
            .is_none());
        assert_eq!(b.len(), 2, "every generator was tried");
        // The basis remains usable afterwards.
        assert!(b.solve_extend(&v(&[1, 1]), &[v(&[0, 3])]).is_some());
    }

    #[test]
    fn rational_coefficients_are_exact() {
        let generators = [
            QVec(vec![
                Rat::from_frac(1, 2),
                Rat::from_frac(1, 3),
                Rat::from_i64(1),
            ]),
            QVec(vec![
                Rat::from_frac(2, 5),
                Rat::from_i64(0),
                Rat::from_frac(7, 4),
            ]),
        ];
        let mut b = IncrementalBasis::new(3);
        for g in &generators {
            b.insert(g);
        }
        let target = combine(
            &generators,
            &QVec(vec![Rat::from_frac(-3, 7), Rat::from_frac(22, 9)]),
        );
        let alpha = b.solve(&target).unwrap();
        assert_eq!(combine(&generators, &alpha), target);
        assert_eq!(alpha[0], Rat::from_frac(-3, 7));
        assert_eq!(alpha[1], Rat::from_frac(22, 9));
    }

    #[test]
    fn fuelled_solve_extend_interrupts_and_leaves_basis_usable() {
        use cqdet_parallel::{Budget, CancelToken, Interrupt};
        let n = 24;
        let generators: Vec<QVec> = (0..n)
            .map(|i| {
                QVec(
                    (0..n)
                        .map(|j| Rat::from_i64(((i * j + i + 1) % 97) as i64 - 48))
                        .collect(),
                )
            })
            .collect();
        let target: QVec = {
            let mut acc = QVec::zeros(n);
            for g in &generators {
                acc = &acc + g;
            }
            acc
        };
        // A budget far below the elimination cost interrupts mid-solve…
        let tiny = Budget::with_limits(Some(8), None);
        let mut gas = Gas::new(&CancelToken::none(), &tiny, "span");
        let mut b = IncrementalBasis::new(n);
        let stop = b
            .solve_extend_gas(&target, &generators, &mut gas)
            .unwrap_err();
        assert!(matches!(stop, Interrupt::Exhausted(e) if e.what == "steps"));
        assert!(tiny.steps_spent() > 8, "work was charged");
        // …and the basis stays consistent: the unmetered retry still finds
        // the exact coefficients (all ones).
        let alpha = b
            .solve_extend(&target, &generators[b.len()..])
            .expect("target is the generator sum");
        let mut recombined = QVec::zeros(n);
        for (a, g) in alpha.iter().zip(&generators) {
            recombined = &recombined + &g.scale(a);
        }
        assert_eq!(recombined, target);
    }

    #[test]
    fn fuelled_byte_ledger_charges_bignum_growth() {
        use cqdet_bigint::Int;
        use cqdet_parallel::{Budget, CancelToken, Interrupt};
        // Large entries: the byte ledger (bit-size proxy) fires even though
        // the step ledger is unlimited.
        let big = Rat::from_int(Int::from_nat(cqdet_bigint::Nat::one().shl_bits(512)));
        let gens: Vec<QVec> = (0..6)
            .map(|i| {
                QVec(
                    (0..6)
                        .map(|j| big.mul_ref(&Rat::from_i64((i * 7 + j * 3 + 1) as i64)))
                        .collect(),
                )
            })
            .collect();
        let target = gens[0].clone();
        let budget = Budget::with_limits(None, Some(16));
        let mut gas = Gas::new(&CancelToken::none(), &budget, "span");
        let mut b = IncrementalBasis::new(6);
        for g in &gens {
            if b.insert_indexed(g, &mut gas).is_err() {
                break;
            }
        }
        let outcome = b.solve_extend_gas(&target, &[], &mut gas);
        let exhausted = matches!(
            outcome,
            Err(Interrupt::Exhausted(e)) if e.what == "bytes"
        ) || budget.bytes_spent() > 16;
        assert!(exhausted, "512-bit factors must charge the byte ledger");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut b = IncrementalBasis::new(3);
        b.insert(&v(&[1, 2]));
    }

    #[test]
    fn export_import_round_trip_preserves_solutions() {
        let generators = [v(&[2, 1, 3]), v(&[5, 2, 7]), v(&[1, 1, 2])];
        let mut b = IncrementalBasis::new(3);
        for g in &generators {
            b.insert(g);
        }
        let rebuilt = IncrementalBasis::from_parts(b.dim(), b.len(), b.export_rows())
            .expect("exported rows satisfy the invariants");
        assert_eq!(rebuilt.rank(), b.rank());
        let target = v(&[1, 1, 2]);
        assert_eq!(rebuilt.solve(&target), b.solve(&target));
        assert!(rebuilt.solve(&v(&[0, 0, 1])).is_none());
    }

    #[test]
    fn from_parts_rejects_invariant_violations() {
        let mut b = IncrementalBasis::new(3);
        b.insert(&v(&[1, 2, 3]));
        b.insert(&v(&[0, 1, 1]));
        let rows = b.export_rows();
        // Out-of-range pivot.
        let mut bad = b.export_rows();
        bad[0].0 = 7;
        assert!(IncrementalBasis::from_parts(3, 2, bad).is_none());
        // Duplicate pivots.
        let mut bad = b.export_rows();
        bad[1].0 = bad[0].0;
        assert!(IncrementalBasis::from_parts(3, 2, bad).is_none());
        // Non-unit pivot entry.
        let mut bad = b.export_rows();
        let p = bad[0].0;
        bad[0].1 .0[p] = Rat::from_i64(2);
        assert!(IncrementalBasis::from_parts(3, 2, bad).is_none());
        // Rank above inserted count.
        assert!(IncrementalBasis::from_parts(3, 1, rows).is_none());
    }

    #[test]
    fn heap_bytes_tracks_bigint_growth() {
        use cqdet_bigint::Nat;
        let mut b = IncrementalBasis::new(2);
        b.insert(&v(&[1, 2]));
        let small = b.heap_bytes();
        let big = Rat::from_nat(Nat::one().shl_bits(4096));
        let mut b2 = IncrementalBasis::new(2);
        b2.insert(&QVec(vec![big.clone(), big]));
        assert!(
            b2.heap_bytes() > small + 512,
            "4096-bit entries must charge their limb storage"
        );
    }
}
