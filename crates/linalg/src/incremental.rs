//! Tier 2 of the exact linear-algebra stack: an **online echelon form**.
//!
//! The batch regimes of the ROADMAP north star decide many span questions
//! against the *same* generating set (Definition 29 vectors of a shared
//! view pool) with varying targets, and the one-shot pipeline usually sees
//! the target enter the span long before every generator has been
//! eliminated.  A monolithic `QMat::solve` per call throws both structures
//! away; an [`IncrementalBasis`] keeps them:
//!
//! * generators are **inserted one at a time**, each reduced against the
//!   rows already present (fully reduced / Gauss–Jordan invariant, so
//!   insertion order never degrades later reductions);
//! * every row carries its **coordinates** over the inserted generators,
//!   so span membership and the certificate coefficients come out of the
//!   same reduction — no second elimination;
//! * [`IncrementalBasis::solve_extend`] feeds generators lazily and stops
//!   as soon as the target's residual hits zero (**early exit**): span
//!   questions over a planted workload never eliminate the columns after
//!   the spanning prefix, and a session-cached basis re-eliminates
//!   *nothing* for the second and later targets.
//!
//! Everything is exact `Rat` arithmetic — this tier needs no verification
//! step, it *is* the exact computation; the modular tier
//! ([`crate::modular`]) sits in front of the dense one-shot solves instead.

use crate::rat::Rat;
use crate::vector::QVec;
use cqdet_parallel::{Gas, Interrupt};

/// One reduced row of the echelon form.
struct EchelonRow {
    /// The pivot column: `vec[pivot] = 1`, and every other row (and every
    /// reduced residual) is zero there.
    pivot: usize,
    /// The row itself, fully reduced against all other rows.
    vec: QVec,
    /// `vec = Σ coords[i] · generatorᵢ` over the inserted generators
    /// (entries past the stored length are zero).
    coords: Vec<Rat>,
}

/// An online echelon form over ℚ with per-row generator coordinates.  See
/// the [module docs](self).
pub struct IncrementalBasis {
    dim: usize,
    /// Number of generators inserted so far (including dependent ones).
    inserted: usize,
    rows: Vec<EchelonRow>,
}

/// `acc[..] += f · src[..]`, growing `acc` with zeros as needed (subtract
/// by passing `f.neg_ref()`).
fn axpy(acc: &mut Vec<Rat>, f: &Rat, src: &[Rat]) {
    if acc.len() < src.len() {
        acc.resize(src.len(), Rat::zero());
    }
    for (a, s) in acc.iter_mut().zip(src) {
        if !s.is_zero() {
            *a = a.add_mul_ref(f, s);
        }
    }
}

/// `vec -= f · src` componentwise, skipping zero source entries — the one
/// elimination inner loop every reduction in this module shares.
fn sub_scaled(vec: &mut QVec, f: &Rat, src: &QVec) {
    for (t, s) in vec.0.iter_mut().zip(src.0.iter()) {
        if !s.is_zero() {
            *t = t.sub_mul_ref(f, s);
        }
    }
}

/// Fuel for one row operation against a row of `width` entries whose
/// elimination factor is `f`: `width` steps of work, plus the factor's bit
/// size as the byte proxy for the coefficient growth it causes.
#[inline]
fn charge_row_op(gas: &mut Gas, f: &Rat, width: usize) -> Result<(), Interrupt> {
    gas.charge_bytes(f.bit_size() as u64 / 8);
    gas.steps(width as u64)
}

impl IncrementalBasis {
    /// An empty basis in ambient dimension `dim`.
    pub fn new(dim: usize) -> IncrementalBasis {
        IncrementalBasis {
            dim,
            inserted: 0,
            rows: Vec::new(),
        }
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of generators inserted so far.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// Whether no generator has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// The rank of the inserted generators.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Bytes of heap storage owned by this basis: every row's vector and
    /// coordinate buffers, limb storage included.  Feeds the byte-accurate
    /// cost accounting of the governed span cache — echelon rows over
    /// bigint rationals are by far its heaviest entries.
    pub fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|row| {
                row.vec.heap_bytes()
                    + row.coords.capacity() * std::mem::size_of::<Rat>()
                    + row.coords.iter().map(Rat::heap_bytes).sum::<usize>()
            })
            .sum::<usize>()
            + self.rows.capacity() * std::mem::size_of::<EchelonRow>()
    }

    /// Export the reduced rows as `(pivot, vec, coords)` triples (cloned),
    /// for the warm-start snapshot.  The inverse of
    /// [`IncrementalBasis::from_parts`].
    pub fn export_rows(&self) -> Vec<(usize, QVec, Vec<Rat>)> {
        self.rows
            .iter()
            .map(|row| (row.pivot, row.vec.clone(), row.coords.clone()))
            .collect()
    }

    /// Rebuild a basis from snapshot parts, validating every structural
    /// invariant the reduction algorithms rely on; returns `None` on any
    /// violation (the snapshot loader then discards the entry and cold
    /// starts that key).  Checked: distinct in-range pivots, row dimension,
    /// unit pivot entries with zeros at every *other* row's pivot column
    /// (the Gauss–Jordan full-reduction invariant), rank and coordinate
    /// lengths bounded by `inserted`.
    pub fn from_parts(
        dim: usize,
        inserted: usize,
        rows: Vec<(usize, QVec, Vec<Rat>)>,
    ) -> Option<IncrementalBasis> {
        if rows.len() > inserted {
            return None;
        }
        let mut seen = vec![false; dim];
        for (pivot, vec, coords) in &rows {
            if *pivot >= dim || seen[*pivot] || vec.dim() != dim || coords.len() > inserted {
                return None;
            }
            seen[*pivot] = true;
        }
        for (pivot, vec, _) in &rows {
            if !vec.0[*pivot].is_one() {
                return None;
            }
            for (other_pivot, _, _) in &rows {
                if other_pivot != pivot && !vec.0[*other_pivot].is_zero() {
                    return None;
                }
            }
        }
        Some(IncrementalBasis {
            dim,
            inserted,
            rows: rows
                .into_iter()
                .map(|(pivot, vec, coords)| EchelonRow { pivot, vec, coords })
                .collect(),
        })
    }

    /// Insert one generator; returns `true` when it enlarged the span.
    pub fn insert(&mut self, v: &QVec) -> bool {
        match self.insert_indexed(v, &mut Gas::unlimited()) {
            Ok(idx) => idx.is_some(),
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`IncrementalBasis::insert`] returning the new row's index, metered:
    /// every row operation charges the [`Gas`] handle, so an exhausted
    /// budget or expired deadline stops the elimination mid-insert.  On
    /// `Err` the basis is *consistent*: either untouched (interrupt during
    /// the initial reduction) or with the insert fully completed (interrupt
    /// during the Jordan restore — the bounded tail is finished unmetered),
    /// so a session-cached basis stays usable after an aborted request.
    fn insert_indexed(&mut self, v: &QVec, gas: &mut Gas) -> Result<Option<usize>, Interrupt> {
        assert_eq!(v.dim(), self.dim, "generator dimension mismatch");
        let mut vec = v.clone();
        let mut coords = vec![Rat::zero(); self.inserted + 1];
        coords[self.inserted] = Rat::one();
        for row in &self.rows {
            let f = vec.0[row.pivot].clone();
            if f.is_zero() {
                continue;
            }
            charge_row_op(gas, &f, self.dim + row.coords.len())?;
            sub_scaled(&mut vec, &f, &row.vec);
            axpy(&mut coords, &f.neg_ref(), &row.coords);
        }
        self.inserted += 1;
        // Pivot: the non-zero entry of minimal bit size, so the Jordan
        // updates below multiply by the smallest numbers available.
        let Some(pivot) = (0..self.dim)
            .filter(|&j| !vec.0[j].is_zero())
            .min_by_key(|&j| vec.0[j].bit_size())
        else {
            return Ok(None);
        };
        let inv = vec.0[pivot].recip();
        for t in vec.0.iter_mut() {
            if !t.is_zero() {
                *t = t.mul_ref(&inv);
            }
        }
        for c in coords.iter_mut() {
            if !c.is_zero() {
                *c = c.mul_ref(&inv);
            }
        }
        // Restore the full-reduction invariant on the existing rows.  Fuel
        // is pre-charged per row *before* mutating it: once a row operation
        // starts it always completes, keeping the echelon invariant intact
        // even when the interrupt lands mid-restore…
        let mut restored = 0usize;
        let mut interrupted = None;
        for row in &mut self.rows {
            let f = row.vec.0[pivot].clone();
            if f.is_zero() {
                restored += 1;
                continue;
            }
            if let Err(stop) = charge_row_op(gas, &f, self.dim + coords.len()) {
                interrupted = Some(stop);
                break;
            }
            sub_scaled(&mut row.vec, &f, &vec);
            axpy(&mut row.coords, &f.neg_ref(), &coords);
            restored += 1;
        }
        if let Some(stop) = interrupted {
            // …and the rows not yet reduced against the new pivot are
            // finished unmetered (bounded tail work), because a half-restored
            // basis would silently corrupt every later answer.
            for row in self.rows.iter_mut().skip(restored) {
                let f = row.vec.0[pivot].clone();
                if f.is_zero() {
                    continue;
                }
                sub_scaled(&mut row.vec, &f, &vec);
                axpy(&mut row.coords, &f.neg_ref(), &coords);
            }
            self.rows.push(EchelonRow { pivot, vec, coords });
            return Err(stop);
        }
        self.rows.push(EchelonRow { pivot, vec, coords });
        Ok(Some(self.rows.len() - 1))
    }

    /// Reduce `target` against the current rows: returns the residual and
    /// coordinates with `target = Σ coordsᵢ·generatorᵢ + residual`.
    fn reduce(&self, target: &QVec, gas: &mut Gas) -> Result<(QVec, Vec<Rat>), Interrupt> {
        assert_eq!(target.dim(), self.dim, "target dimension mismatch");
        let mut residual = target.clone();
        let mut coords = vec![Rat::zero(); self.inserted];
        for row in &self.rows {
            let f = residual.0[row.pivot].clone();
            if f.is_zero() {
                continue;
            }
            charge_row_op(gas, &f, self.dim + row.coords.len())?;
            sub_scaled(&mut residual, &f, &row.vec);
            axpy(&mut coords, &f, &row.coords);
        }
        Ok((residual, coords))
    }

    /// Whether `target` lies in the span of the inserted generators.
    pub fn contains(&self, target: &QVec) -> bool {
        match self.reduce(target, &mut Gas::unlimited()) {
            Ok((residual, _)) => residual.is_zero(),
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// Coefficients over the inserted generators when `target` is in their
    /// span (`target = Σ αᵢ·generatorᵢ`, `α` of length [`Self::len`]).
    pub fn solve(&self, target: &QVec) -> Option<QVec> {
        let (residual, mut coords) = match self.reduce(target, &mut Gas::unlimited()) {
            Ok(r) => r,
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        };
        if !residual.is_zero() {
            return None;
        }
        coords.resize(self.inserted, Rat::zero());
        Some(QVec(coords))
    }

    /// [`Self::solve`] with lazy insertion: reduce `target` against the
    /// current rows, and while the residual is non-zero keep inserting
    /// generators from `feed` (in order), re-reducing the residual by each
    /// newly created row.  Stops — **early exit** — the moment the target
    /// enters the span; generators never fed (and fed-but-dependent ones
    /// past the solution) simply get coefficient zero.
    ///
    /// Returns coefficients over *all* generators inserted so far (length
    /// [`Self::len`] after the call), or `None` when `feed` was exhausted
    /// with a non-zero residual.
    pub fn solve_extend(&mut self, target: &QVec, feed: &[QVec]) -> Option<QVec> {
        match self.solve_extend_gas(target, feed, &mut Gas::unlimited()) {
            Ok(answer) => answer,
            Err(stop) => unreachable!("unlimited gas interrupted: {stop}"),
        }
    }

    /// [`Self::solve_extend`] under fuel metering: every exact row operation
    /// (reductions, insertions, Jordan restores) charges the [`Gas`] handle.
    /// `Err` aborts with the basis left consistent — generators inserted
    /// before the interrupt stay inserted (see [`Self::insert`]'s metered
    /// contract), so a session cache survives an exhausted request.
    pub fn solve_extend_gas(
        &mut self,
        target: &QVec,
        feed: &[QVec],
        gas: &mut Gas,
    ) -> Result<Option<QVec>, Interrupt> {
        let (mut residual, mut coords) = self.reduce(target, gas)?;
        for v in feed {
            if residual.is_zero() {
                break;
            }
            if let Some(idx) = self.insert_indexed(v, gas)? {
                let row = &self.rows[idx];
                let f = residual.0[row.pivot].clone();
                if !f.is_zero() {
                    charge_row_op(gas, &f, self.dim + row.coords.len())?;
                    sub_scaled(&mut residual, &f, &row.vec);
                    axpy(&mut coords, &f, &row.coords);
                }
            }
        }
        // Kernel-exit flush: tail work below the flush granularity (and all
        // pending byte charges) must hit the shared ledger before returning.
        gas.flush()?;
        if !residual.is_zero() {
            return Ok(None);
        }
        coords.resize(self.inserted, Rat::zero());
        Ok(Some(QVec(coords)))
    }
}

// ---- checkpointed basis with row removal --------------------------------

/// How [`CheckpointedBasis::remove_slots_gas`] repaired the echelon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalKind {
    /// Every removed slot was a dependent insert (it never created a row),
    /// so the echelon was compacted in place — no elimination re-ran.
    Compacted,
    /// A removed slot was pivotal: the basis was restored from the last
    /// checkpoint at or before the first removed slot and the surviving
    /// generators after it were re-inserted.
    Replayed,
}

/// A saved echelon state: the reduced rows exactly as they stood after
/// `inserted` generators had been fed (the coordinate columns of later
/// generators are all zero at that point, so the export is self-contained).
struct Checkpoint {
    inserted: usize,
    rows: Vec<(usize, QVec, Vec<Rat>)>,
}

/// An [`IncrementalBasis`] that additionally supports **generator removal**,
/// for long-lived mutable sessions whose view pool shrinks as well as grows.
///
/// The wrapper owns the authoritative generator sequence; the inner echelon
/// holds a fed prefix of it (`fed() ≤ len()`, lagging only after a fuel
/// interrupt) and is caught up at the start of every metered operation.
/// Removal has two regimes:
///
/// * a removed slot whose insert was **dependent** (created no row) is
///   provably indistinguishable from never having been inserted — no row
///   ever references its coordinate column (rows created earlier predate
///   the slot; rows created later start at zero there and only mix rows
///   that are zero there) — so all-dependent removals compact coordinate
///   columns in place without re-running any elimination;
/// * a **pivotal** slot's row is woven into every later reduction, so the
///   echelon is restored from the newest checkpoint at or before the first
///   removed slot (checkpoints are taken every `interval` fed generators)
///   and the surviving suffix is re-inserted, fuel-charged like any insert.
///
/// Checkpoint snapshots are plain row exports; their clone cost is bounded
/// bookkeeping accounted through [`CheckpointedBasis::heap_bytes`] (the
/// governed-cache byte ledger), while every elimination step stays on the
/// [`Gas`] ledger.
pub struct CheckpointedBasis {
    basis: IncrementalBasis,
    /// The authoritative generator sequence; `basis` has fed the prefix of
    /// length [`Self::fed`].
    generators: Vec<QVec>,
    /// Per *fed* slot: whether its insert created a row (independent).
    pivotal: Vec<bool>,
    /// Checkpoint cadence in fed generators (≥ 1).
    interval: usize,
    checkpoints: Vec<Checkpoint>,
}

impl CheckpointedBasis {
    /// An empty checkpointed basis in ambient dimension `dim`, snapshotting
    /// every `interval` fed generators (clamped to ≥ 1).
    pub fn new(dim: usize, interval: usize) -> CheckpointedBasis {
        CheckpointedBasis {
            basis: IncrementalBasis::new(dim),
            generators: Vec::new(),
            pivotal: Vec::new(),
            interval: interval.max(1),
            checkpoints: Vec::new(),
        }
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.basis.dim
    }

    /// Number of generators in the authoritative sequence.
    pub fn len(&self) -> usize {
        self.generators.len()
    }

    /// Whether the generator sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }

    /// Number of generators the echelon has fed so far (≤ [`Self::len`];
    /// strictly less only after an interrupt).
    pub fn fed(&self) -> usize {
        self.basis.len()
    }

    /// Rank of the fed generators.
    pub fn rank(&self) -> usize {
        self.basis.rank()
    }

    /// Number of checkpoints currently retained.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Heap bytes owned by the echelon, the generator copies and every
    /// checkpoint — the session cache weighs entries by this.
    pub fn heap_bytes(&self) -> usize {
        self.basis.heap_bytes()
            + self.generators.iter().map(QVec::heap_bytes).sum::<usize>()
            + self
                .checkpoints
                .iter()
                .map(|cp| {
                    cp.rows
                        .iter()
                        .map(|(_, vec, coords)| {
                            vec.heap_bytes() + coords.iter().map(Rat::heap_bytes).sum::<usize>()
                        })
                        .sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Append a generator to the authoritative sequence (cheap, unmetered);
    /// the echelon absorbs it on the next metered operation.
    pub fn push_generator(&mut self, v: QVec) {
        assert_eq!(v.dim(), self.dim(), "generator dimension mismatch");
        self.generators.push(v);
    }

    /// Snapshot the echelon when the fed count hits the cadence.
    fn maybe_checkpoint(&mut self) {
        let n = self.basis.len();
        if n > 0 && n.is_multiple_of(self.interval) {
            self.checkpoints.push(Checkpoint {
                inserted: n,
                rows: self.basis.export_rows(),
            });
        }
    }

    /// Feed every not-yet-fed generator into the echelon, fuel-charged.  On
    /// `Err` the state is consistent and *resumable*: generators fed before
    /// the interrupt stay fed, the rest are absorbed by the next call.
    pub fn catch_up_gas(&mut self, gas: &mut Gas) -> Result<(), Interrupt> {
        while self.basis.len() < self.generators.len() {
            let idx = self.basis.len();
            let v = self.generators[idx].clone();
            match self.basis.insert_indexed(&v, gas) {
                Ok(created) => {
                    self.pivotal.push(created.is_some());
                    self.maybe_checkpoint();
                }
                Err(stop) => {
                    // The metered insert either completed (a row was pushed
                    // — only pivotal inserts take the interrupted-restore
                    // path) or left the basis untouched.
                    if self.basis.len() > idx {
                        self.pivotal.push(true);
                        self.maybe_checkpoint();
                    }
                    return Err(stop);
                }
            }
        }
        Ok(())
    }

    /// Solve `target = Σ αᵢ·generatorᵢ` against the (caught-up) echelon:
    /// coefficients over the full generator sequence, or `None` when the
    /// target is outside their span.  Fuel-charged; an interrupt leaves the
    /// state consistent and resumable.
    pub fn solve_gas(&mut self, target: &QVec, gas: &mut Gas) -> Result<Option<QVec>, Interrupt> {
        self.catch_up_gas(gas)?;
        self.basis.solve_extend_gas(target, &[], gas)
    }

    /// Grow the ambient dimension to `new_dim`, zero-padding every stored
    /// vector (rows, generators, checkpoints).  Padding preserves every
    /// echelon invariant — new coordinates are zero everywhere — so this is
    /// exact, and it is how a session absorbs freshly appended basis
    /// components.
    pub fn grow_dim(&mut self, new_dim: usize) {
        assert!(new_dim >= self.dim(), "dimension can only grow");
        self.basis.dim = new_dim;
        for row in &mut self.basis.rows {
            row.vec.0.resize(new_dim, Rat::zero());
        }
        for g in &mut self.generators {
            g.0.resize(new_dim, Rat::zero());
        }
        for cp in &mut self.checkpoints {
            for (_, vec, _) in &mut cp.rows {
                vec.0.resize(new_dim, Rat::zero());
            }
        }
    }

    /// Drop the ambient coordinates `cols` (sorted ascending, distinct),
    /// which **must** be zero in every stored generator — the caller removes
    /// coordinates no surviving generator touches (a basis component only
    /// departed views contributed).  Rows are linear combinations of the
    /// generators, so they are zero there too; pivots above each dropped
    /// column shift down.  Checkpoints are discarded (their generator
    /// prefixes are equally zero there, but re-deriving them is not worth
    /// the bookkeeping — the next removal simply replays from further back).
    pub fn drop_columns(&mut self, cols: &[usize]) {
        if cols.is_empty() {
            return;
        }
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(self
            .generators
            .iter()
            .all(|g| cols.iter().all(|&c| g.0[c].is_zero())));
        let drop_from = |vec: &mut QVec| {
            for &c in cols.iter().rev() {
                vec.0.remove(c);
            }
        };
        for g in &mut self.generators {
            drop_from(g);
        }
        for row in &mut self.basis.rows {
            debug_assert!(cols.iter().all(|&c| row.vec.0[c].is_zero()));
            drop_from(&mut row.vec);
            row.pivot -= cols.iter().filter(|&&c| c < row.pivot).count();
        }
        self.basis.dim -= cols.len();
        self.checkpoints.clear();
    }

    /// Remove the generator slots `slots` (sorted ascending, distinct, all
    /// `< len()`), repairing the echelon.
    ///
    /// Fast path — every removed *fed* slot was dependent: compaction only
    /// (see the type docs for why this is exact).  Otherwise the echelon is
    /// restored from the newest checkpoint at or before the first removed
    /// slot and the surviving suffix is replayed, fuel-charged.  On `Err`
    /// the removal **has been applied** to the authoritative sequence and
    /// the state is consistent; the interrupted replay resumes on the next
    /// metered operation.
    pub fn remove_slots_gas(
        &mut self,
        slots: &[usize],
        gas: &mut Gas,
    ) -> Result<RemovalKind, Interrupt> {
        debug_assert!(slots.windows(2).all(|w| w[0] < w[1]));
        assert!(
            slots.iter().all(|&s| s < self.generators.len()),
            "slot out of range"
        );
        let fed = self.basis.len();
        // Unfed slots never touched the echelon: drop them from the pending
        // tail outright.
        for &s in slots.iter().rev() {
            if s >= fed {
                self.generators.remove(s);
            }
        }
        let fed_slots: Vec<usize> = slots.iter().copied().filter(|&s| s < fed).collect();
        if fed_slots.is_empty() {
            return Ok(RemovalKind::Compacted);
        }
        if fed_slots.iter().all(|&s| !self.pivotal[s]) {
            // Pre-charge the compaction sweep before mutating anything.
            gas.steps((self.basis.rows.len() * fed_slots.len() + fed_slots.len()) as u64)?;
            for &s in fed_slots.iter().rev() {
                self.generators.remove(s);
                self.pivotal.remove(s);
                for row in &mut self.basis.rows {
                    if s < row.coords.len() {
                        debug_assert!(row.coords[s].is_zero());
                        row.coords.remove(s);
                    }
                }
            }
            self.basis.inserted -= fed_slots.len();
            let min = fed_slots[0];
            self.checkpoints.retain(|cp| cp.inserted <= min);
            gas.flush()?;
            return Ok(RemovalKind::Compacted);
        }
        // Replay: restore the newest checkpoint not past the first removed
        // slot (its coordinate columns predate every removal), drop the
        // removed suffix slots from the sequence, and re-feed the rest.
        let first = fed_slots[0];
        let restored = self
            .checkpoints
            .iter()
            .filter(|cp| cp.inserted <= first)
            .max_by_key(|cp| cp.inserted)
            .and_then(|cp| IncrementalBasis::from_parts(self.dim(), cp.inserted, cp.rows.clone()))
            .unwrap_or_else(|| IncrementalBasis::new(self.dim()));
        self.basis = restored;
        self.pivotal.truncate(self.basis.len());
        self.checkpoints
            .retain(|cp| cp.inserted <= self.basis.len());
        for &s in fed_slots.iter().rev() {
            self.generators.remove(s);
        }
        self.catch_up_gas(gas)?;
        gas.flush()?;
        Ok(RemovalKind::Replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[i64]) -> QVec {
        QVec::from_i64s(vals)
    }

    /// `Σ αᵢ·gᵢ` over the first `alpha.len()` generators.
    fn combine(generators: &[QVec], alpha: &QVec) -> QVec {
        let mut acc = QVec::zeros(generators[0].dim());
        for (a, g) in alpha.iter().zip(generators) {
            acc = &acc + &g.scale(a);
        }
        acc
    }

    #[test]
    fn rank_and_membership() {
        let mut b = IncrementalBasis::new(3);
        assert!(b.is_empty() && b.rank() == 0);
        assert!(b.insert(&v(&[1, 2, 3])));
        assert!(b.insert(&v(&[0, 1, 1])));
        assert!(!b.insert(&v(&[1, 3, 4])), "dependent generator");
        assert_eq!(b.rank(), 2);
        assert_eq!(b.len(), 3);
        assert!(b.contains(&v(&[2, 5, 7])));
        assert!(!b.contains(&v(&[0, 0, 1])));
    }

    #[test]
    fn solve_reconstructs_targets() {
        let generators = [v(&[2, 1, 3]), v(&[5, 2, 7]), v(&[1, 1, 2])];
        let mut b = IncrementalBasis::new(3);
        for g in &generators {
            b.insert(g);
        }
        let target = v(&[1, 1, 2]);
        let alpha = b.solve(&target).unwrap();
        assert_eq!(alpha.dim(), 3);
        assert_eq!(combine(&generators, &alpha), target);
        assert!(b.solve(&v(&[0, 0, 1])).is_none());
    }

    #[test]
    fn solve_extend_exits_early() {
        let generators = vec![v(&[1, 0, 0]), v(&[0, 1, 0]), v(&[0, 0, 1])];
        let mut b = IncrementalBasis::new(3);
        // Target spanned by the first generator alone: only one insert.
        let alpha = b.solve_extend(&v(&[3, 0, 0]), &generators).unwrap();
        assert_eq!(b.len(), 1, "early exit after the first generator");
        assert_eq!(alpha, v(&[3]));
        // A later target resumes feeding where the basis left off.
        let alpha = b
            .solve_extend(&v(&[1, 2, 0]), &generators[b.len()..])
            .unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(alpha, v(&[1, 2]));
        // Exhausting the feed without spanning reports None.
        assert!(b
            .solve_extend(&v(&[1, 1, 7]), &generators[b.len()..])
            .is_some());
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn solve_extend_reports_out_of_span() {
        let mut b = IncrementalBasis::new(2);
        assert!(b
            .solve_extend(&v(&[1, 1]), &[v(&[1, 0]), v(&[2, 0])])
            .is_none());
        assert_eq!(b.len(), 2, "every generator was tried");
        // The basis remains usable afterwards.
        assert!(b.solve_extend(&v(&[1, 1]), &[v(&[0, 3])]).is_some());
    }

    #[test]
    fn rational_coefficients_are_exact() {
        let generators = [
            QVec(vec![
                Rat::from_frac(1, 2),
                Rat::from_frac(1, 3),
                Rat::from_i64(1),
            ]),
            QVec(vec![
                Rat::from_frac(2, 5),
                Rat::from_i64(0),
                Rat::from_frac(7, 4),
            ]),
        ];
        let mut b = IncrementalBasis::new(3);
        for g in &generators {
            b.insert(g);
        }
        let target = combine(
            &generators,
            &QVec(vec![Rat::from_frac(-3, 7), Rat::from_frac(22, 9)]),
        );
        let alpha = b.solve(&target).unwrap();
        assert_eq!(combine(&generators, &alpha), target);
        assert_eq!(alpha[0], Rat::from_frac(-3, 7));
        assert_eq!(alpha[1], Rat::from_frac(22, 9));
    }

    #[test]
    fn fuelled_solve_extend_interrupts_and_leaves_basis_usable() {
        use cqdet_parallel::{Budget, CancelToken, Interrupt};
        let n = 24;
        let generators: Vec<QVec> = (0..n)
            .map(|i| {
                QVec(
                    (0..n)
                        .map(|j| Rat::from_i64(((i * j + i + 1) % 97) as i64 - 48))
                        .collect(),
                )
            })
            .collect();
        let target: QVec = {
            let mut acc = QVec::zeros(n);
            for g in &generators {
                acc = &acc + g;
            }
            acc
        };
        // A budget far below the elimination cost interrupts mid-solve…
        let tiny = Budget::with_limits(Some(8), None);
        let mut gas = Gas::new(&CancelToken::none(), &tiny, "span");
        let mut b = IncrementalBasis::new(n);
        let stop = b
            .solve_extend_gas(&target, &generators, &mut gas)
            .unwrap_err();
        assert!(matches!(stop, Interrupt::Exhausted(e) if e.what == "steps"));
        assert!(tiny.steps_spent() > 8, "work was charged");
        // …and the basis stays consistent: the unmetered retry still finds
        // the exact coefficients (all ones).
        let alpha = b
            .solve_extend(&target, &generators[b.len()..])
            .expect("target is the generator sum");
        let mut recombined = QVec::zeros(n);
        for (a, g) in alpha.iter().zip(&generators) {
            recombined = &recombined + &g.scale(a);
        }
        assert_eq!(recombined, target);
    }

    #[test]
    fn fuelled_byte_ledger_charges_bignum_growth() {
        use cqdet_bigint::Int;
        use cqdet_parallel::{Budget, CancelToken, Interrupt};
        // Large entries: the byte ledger (bit-size proxy) fires even though
        // the step ledger is unlimited.
        let big = Rat::from_int(Int::from_nat(cqdet_bigint::Nat::one().shl_bits(512)));
        let gens: Vec<QVec> = (0..6)
            .map(|i| {
                QVec(
                    (0..6)
                        .map(|j| big.mul_ref(&Rat::from_i64((i * 7 + j * 3 + 1) as i64)))
                        .collect(),
                )
            })
            .collect();
        let target = gens[0].clone();
        let budget = Budget::with_limits(None, Some(16));
        let mut gas = Gas::new(&CancelToken::none(), &budget, "span");
        let mut b = IncrementalBasis::new(6);
        for g in &gens {
            if b.insert_indexed(g, &mut gas).is_err() {
                break;
            }
        }
        let outcome = b.solve_extend_gas(&target, &[], &mut gas);
        let exhausted = matches!(
            outcome,
            Err(Interrupt::Exhausted(e)) if e.what == "bytes"
        ) || budget.bytes_spent() > 16;
        assert!(exhausted, "512-bit factors must charge the byte ledger");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut b = IncrementalBasis::new(3);
        b.insert(&v(&[1, 2]));
    }

    #[test]
    fn export_import_round_trip_preserves_solutions() {
        let generators = [v(&[2, 1, 3]), v(&[5, 2, 7]), v(&[1, 1, 2])];
        let mut b = IncrementalBasis::new(3);
        for g in &generators {
            b.insert(g);
        }
        let rebuilt = IncrementalBasis::from_parts(b.dim(), b.len(), b.export_rows())
            .expect("exported rows satisfy the invariants");
        assert_eq!(rebuilt.rank(), b.rank());
        let target = v(&[1, 1, 2]);
        assert_eq!(rebuilt.solve(&target), b.solve(&target));
        assert!(rebuilt.solve(&v(&[0, 0, 1])).is_none());
    }

    #[test]
    fn from_parts_rejects_invariant_violations() {
        let mut b = IncrementalBasis::new(3);
        b.insert(&v(&[1, 2, 3]));
        b.insert(&v(&[0, 1, 1]));
        let rows = b.export_rows();
        // Out-of-range pivot.
        let mut bad = b.export_rows();
        bad[0].0 = 7;
        assert!(IncrementalBasis::from_parts(3, 2, bad).is_none());
        // Duplicate pivots.
        let mut bad = b.export_rows();
        bad[1].0 = bad[0].0;
        assert!(IncrementalBasis::from_parts(3, 2, bad).is_none());
        // Non-unit pivot entry.
        let mut bad = b.export_rows();
        let p = bad[0].0;
        bad[0].1 .0[p] = Rat::from_i64(2);
        assert!(IncrementalBasis::from_parts(3, 2, bad).is_none());
        // Rank above inserted count.
        assert!(IncrementalBasis::from_parts(3, 1, rows).is_none());
    }

    /// Reference model for the checkpointed tests: a fresh scratch basis
    /// over `gens`, solving `target`.
    fn scratch_solve(gens: &[QVec], target: &QVec) -> Option<QVec> {
        let dim = target.dim();
        let mut b = IncrementalBasis::new(dim);
        for g in gens {
            b.insert(g);
        }
        b.solve(target)
    }

    #[test]
    fn checkpointed_matches_scratch_after_add_remove_churn() {
        // Deterministic pseudo-random generators with plenty of dependence.
        let dim = 6;
        let gen = |seed: usize| {
            QVec(
                (0..dim)
                    .map(|j| Rat::from_i64(((seed * 31 + j * 17 + 5) % 7) as i64 - 3))
                    .collect(),
            )
        };
        let mut cb = CheckpointedBasis::new(dim, 3);
        let mut model: Vec<QVec> = Vec::new();
        let mut gas = Gas::unlimited();
        for seed in 0..10 {
            cb.push_generator(gen(seed));
            model.push(gen(seed));
        }
        // Interleave removals (front, middle, back) with solves and adds.
        for (step, slot) in [(0usize, 0usize), (1, 3), (2, 5)] {
            cb.remove_slots_gas(&[slot], &mut gas).unwrap();
            model.remove(slot);
            cb.push_generator(gen(100 + step));
            model.push(gen(100 + step));
            for t in 0..4 {
                let target = gen(200 + step * 4 + t);
                assert_eq!(
                    cb.solve_gas(&target, &mut gas).unwrap(),
                    scratch_solve(&model, &target),
                    "step {step} target {t}"
                );
            }
        }
        assert_eq!(cb.len(), model.len());
    }

    #[test]
    fn dependent_slot_removal_compacts_without_replay() {
        let mut cb = CheckpointedBasis::new(3, 100);
        let mut gas = Gas::unlimited();
        cb.push_generator(v(&[1, 0, 0]));
        cb.push_generator(v(&[2, 0, 0])); // dependent on slot 0
        cb.push_generator(v(&[0, 1, 0]));
        cb.catch_up_gas(&mut gas).unwrap();
        assert_eq!(cb.rank(), 2);
        let kind = cb.remove_slots_gas(&[1], &mut gas).unwrap();
        assert_eq!(kind, RemovalKind::Compacted, "dependent slot: no replay");
        assert_eq!(cb.len(), 2);
        // Coefficients are over the compacted sequence.
        let alpha = cb.solve_gas(&v(&[3, 7, 0]), &mut gas).unwrap().unwrap();
        assert_eq!(alpha, v(&[3, 7]));
    }

    #[test]
    fn pivotal_removal_replays_from_checkpoint() {
        let mut cb = CheckpointedBasis::new(4, 2);
        let mut gas = Gas::unlimited();
        let gens = [
            v(&[1, 0, 0, 0]),
            v(&[1, 1, 0, 0]),
            v(&[0, 0, 1, 0]),
            v(&[0, 0, 1, 1]),
        ];
        for g in &gens {
            cb.push_generator(g.clone());
        }
        cb.catch_up_gas(&mut gas).unwrap();
        assert!(cb.checkpoints() >= 1, "cadence-2 snapshots were taken");
        let kind = cb.remove_slots_gas(&[2], &mut gas).unwrap();
        assert_eq!(kind, RemovalKind::Replayed, "pivotal slot forces a replay");
        let model = [gens[0].clone(), gens[1].clone(), gens[3].clone()];
        for target in [v(&[2, 1, 0, 0]), v(&[0, 0, 1, 1]), v(&[1, 1, 1, 1])] {
            assert_eq!(
                cb.solve_gas(&target, &mut gas).unwrap(),
                scratch_solve(&model, &target)
            );
        }
        // Out-of-span after the removal: slot 2's pivot died with it.
        assert!(cb.solve_gas(&v(&[0, 0, 1, 0]), &mut gas).unwrap().is_none());
    }

    #[test]
    fn grow_and_drop_columns_round_trip() {
        let mut cb = CheckpointedBasis::new(2, 100);
        let mut gas = Gas::unlimited();
        cb.push_generator(v(&[1, 2]));
        cb.catch_up_gas(&mut gas).unwrap();
        cb.grow_dim(4);
        assert_eq!(cb.dim(), 4);
        cb.push_generator(v(&[0, 0, 1, 0]));
        cb.catch_up_gas(&mut gas).unwrap();
        // Solve in the grown dimension.
        let alpha = cb.solve_gas(&v(&[2, 4, 5, 0]), &mut gas).unwrap().unwrap();
        assert_eq!(alpha, v(&[2, 5]));
        // Drop the never-touched columns (3) and the one slot-1 owns after
        // removing slot 1.
        cb.remove_slots_gas(&[1], &mut gas).unwrap();
        cb.drop_columns(&[2, 3]);
        assert_eq!(cb.dim(), 2);
        let alpha = cb.solve_gas(&v(&[3, 6]), &mut gas).unwrap().unwrap();
        assert_eq!(alpha, v(&[3]));
    }

    #[test]
    fn interrupted_replay_resumes_on_next_operation() {
        use cqdet_parallel::{Budget, CancelToken};
        let n = 24;
        let gens: Vec<QVec> = (0..n)
            .map(|i| {
                QVec(
                    (0..n)
                        .map(|j| Rat::from_i64(((i * j + 3 * i + j + 1) % 97) as i64 - 48))
                        .collect(),
                )
            })
            .collect();
        let mut cb = CheckpointedBasis::new(n, 4);
        for g in &gens {
            cb.push_generator(g.clone());
        }
        cb.catch_up_gas(&mut Gas::unlimited()).unwrap();
        // A tiny budget interrupts the replay mid-feed…
        let tiny = Budget::with_limits(Some(8), None);
        let mut gas = Gas::new(&CancelToken::none(), &tiny, "span");
        let stop = cb.remove_slots_gas(&[1], &mut gas).unwrap_err();
        assert!(matches!(stop, Interrupt::Exhausted(_)));
        assert!(cb.fed() < cb.len(), "the echelon lags after the interrupt");
        // …and the next unmetered solve catches up and answers exactly.
        let mut model = gens.clone();
        model.remove(1);
        let target = {
            let mut acc = QVec::zeros(n);
            for g in &model {
                acc = &acc + g;
            }
            acc
        };
        let alpha = cb
            .solve_gas(&target, &mut Gas::unlimited())
            .unwrap()
            .expect("sum of survivors is in their span");
        let mut recombined = QVec::zeros(n);
        for (a, g) in alpha.iter().zip(&model) {
            recombined = &recombined + &g.scale(a);
        }
        assert_eq!(recombined, target);
    }

    #[test]
    fn heap_bytes_tracks_bigint_growth() {
        use cqdet_bigint::Nat;
        let mut b = IncrementalBasis::new(2);
        b.insert(&v(&[1, 2]));
        let small = b.heap_bytes();
        let big = Rat::from_nat(Nat::one().shl_bits(4096));
        let mut b2 = IncrementalBasis::new(2);
        b2.insert(&QVec(vec![big.clone(), big]));
        assert!(
            b2.heap_bytes() > small + 512,
            "4096-bit entries must charge their limb storage"
        );
    }
}
