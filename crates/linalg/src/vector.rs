//! Dense vectors over ℚ and the componentwise operations of Definition 48.

use crate::rat::Rat;
use cqdet_bigint::Int;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense vector of exact rationals.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct QVec(pub Vec<Rat>);

impl QVec {
    /// The zero vector of dimension `k`.
    pub fn zeros(k: usize) -> Self {
        QVec(vec![Rat::zero(); k])
    }

    /// The all-ones vector of dimension `k`.
    pub fn ones(k: usize) -> Self {
        QVec(vec![Rat::one(); k])
    }

    /// The `i`-th standard basis vector of dimension `k`.
    pub fn unit(k: usize, i: usize) -> Self {
        let mut v = Self::zeros(k);
        v.0[i] = Rat::one();
        v
    }

    /// Construct from `i64` entries.
    pub fn from_i64s(values: &[i64]) -> Self {
        QVec(values.iter().map(|&v| Rat::from_i64(v)).collect())
    }

    /// Construct from integer entries.
    pub fn from_ints(values: &[Int]) -> Self {
        QVec(values.iter().map(|v| Rat::from_int(v.clone())).collect())
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Bytes of heap storage owned by this vector: the entry buffer plus
    /// every entry's own limb storage.  Feeds the byte-accurate cost
    /// accounting of the governed caches.
    pub fn heap_bytes(&self) -> usize {
        self.0.capacity() * std::mem::size_of::<Rat>()
            + self.0.iter().map(Rat::heap_bytes).sum::<usize>()
    }

    /// Iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Rat> {
        self.0.iter()
    }

    /// Whether all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(Rat::is_zero)
    }

    /// Whether all entries are non-negative.
    pub fn is_non_negative(&self) -> bool {
        self.0.iter().all(Rat::is_non_negative)
    }

    /// Whether all entries are integers.
    pub fn is_integral(&self) -> bool {
        self.0.iter().all(Rat::is_integer)
    }

    /// Scale every entry by `c`.
    pub fn scale(&self, c: &Rat) -> QVec {
        QVec(self.0.iter().map(|x| x.mul_ref(c)).collect())
    }

    /// The least `c ∈ ℕ⁺` such that `c·self` has integer entries
    /// (the common denominator used in Lemma 55).
    pub fn common_denominator(&self) -> Int {
        let mut l = Int::one();
        for x in &self.0 {
            l = l.lcm(&Int::from_nat(x.denom().clone()));
        }
        l
    }

    /// Convert to a vector of integers, if every entry is an integer.
    pub fn to_ints(&self) -> Option<Vec<Int>> {
        self.0.iter().map(Rat::to_int).collect()
    }
}

impl fmt::Debug for QVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QVec{:?}",
            self.0.iter().map(|x| x.to_string()).collect::<Vec<_>>()
        )
    }
}

impl fmt::Display for QVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

impl Index<usize> for QVec {
    type Output = Rat;
    fn index(&self, i: usize) -> &Rat {
        &self.0[i]
    }
}

impl IndexMut<usize> for QVec {
    fn index_mut(&mut self, i: usize) -> &mut Rat {
        &mut self.0[i]
    }
}

impl Add<&QVec> for &QVec {
    type Output = QVec;
    fn add(self, rhs: &QVec) -> QVec {
        assert_eq!(self.dim(), rhs.dim(), "vector dimension mismatch");
        QVec(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a.add_ref(b))
                .collect(),
        )
    }
}

impl Sub<&QVec> for &QVec {
    type Output = QVec;
    fn sub(self, rhs: &QVec) -> QVec {
        assert_eq!(self.dim(), rhs.dim(), "vector dimension mismatch");
        QVec(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a.sub_ref(b))
                .collect(),
        )
    }
}

impl Mul<&Rat> for &QVec {
    type Output = QVec;
    fn mul(self, rhs: &Rat) -> QVec {
        self.scale(rhs)
    }
}

/// The dot product `⟨u⃗, v⃗⟩` (Section 2.3).
pub fn dot(u: &QVec, v: &QVec) -> Rat {
    assert_eq!(u.dim(), v.dim(), "vector dimension mismatch");
    let mut acc = Rat::zero();
    for (a, b) in u.0.iter().zip(v.0.iter()) {
        acc += &a.mul_ref(b);
    }
    acc
}

/// Componentwise (Hadamard) product `u⃗ ∘ v⃗` (Definition 48(1)).
pub fn hadamard(u: &QVec, v: &QVec) -> QVec {
    assert_eq!(u.dim(), v.dim(), "vector dimension mismatch");
    QVec(
        u.0.iter()
            .zip(v.0.iter())
            .map(|(a, b)| a.mul_ref(b))
            .collect(),
    )
}

/// The componentwise power `t^{u⃗}` (Definition 48(3)):
/// `(t^{u(1)}, …, t^{u(k)})` for a positive rational `t` and an integer vector `u⃗`.
///
/// Panics if some entry of `u⃗` is not an integer, or if `t` is zero and an
/// exponent is negative.
// The panics below are the documented contract of this Definition 48
// helper; callers (the counterexample construction) guarantee integrality.
#[allow(clippy::expect_used)]
pub fn pow_vec(t: &Rat, u: &QVec) -> QVec {
    QVec(
        u.0.iter()
            .map(|e| {
                let e = e
                    .to_int()
                    .expect("pow_vec exponent vector must be integral")
                    .to_i64()
                    .expect("pow_vec exponent too large");
                t.pow_i64(e)
            })
            .collect(),
    )
}

/// The `♂` operation of Definition 48(2): `u⃗ ♂ v⃗ = Π u(i)^{v(i)}`.
///
/// Defined (as in the paper) for non-negative `u⃗` and arbitrary rational
/// exponent *integer* entries of `v⃗`; with the `0⁰ = 1` convention.
/// Panics on `0` raised to a negative power.
// The panics below are the documented contract of this Definition 48
// helper; callers (the counterexample construction) guarantee integrality.
#[allow(clippy::expect_used)]
pub fn mars(u: &QVec, v: &QVec) -> Rat {
    assert_eq!(u.dim(), v.dim(), "vector dimension mismatch");
    let mut acc = Rat::one();
    for (base, e) in u.0.iter().zip(v.0.iter()) {
        let e = e
            .to_int()
            .expect("mars exponent vector must be integral")
            .to_i64()
            .expect("mars exponent too large");
        acc = acc.mul_ref(&base.pow_i64(e));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[i64]) -> QVec {
        QVec::from_i64s(vals)
    }

    #[test]
    fn constructors() {
        assert_eq!(QVec::zeros(3), v(&[0, 0, 0]));
        assert_eq!(QVec::ones(2), v(&[1, 1]));
        assert_eq!(QVec::unit(3, 1), v(&[0, 1, 0]));
        assert!(QVec::zeros(3).is_zero());
        assert!(!QVec::unit(3, 0).is_zero());
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(&v(&[1, 2, 3]) + &v(&[4, 5, 6]), v(&[5, 7, 9]));
        assert_eq!(&v(&[4, 5, 6]) - &v(&[1, 2, 3]), v(&[3, 3, 3]));
        assert_eq!(v(&[1, -2, 3]).scale(&Rat::from_i64(-2)), v(&[-2, 4, -6]));
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&v(&[1, 2, 3]), &v(&[4, 5, 6])), Rat::from_i64(32));
        assert_eq!(dot(&v(&[1, -1]), &v(&[1, 1])), Rat::zero());
    }

    #[test]
    fn hadamard_product() {
        assert_eq!(hadamard(&v(&[1, 2, 3]), &v(&[4, 5, 6])), v(&[4, 10, 18]));
    }

    #[test]
    fn pow_vec_and_mars() {
        let t = Rat::from_frac(3, 2);
        let z = v(&[2, 0, -1]);
        let p = pow_vec(&t, &z);
        assert_eq!(p[0], Rat::from_frac(9, 4));
        assert_eq!(p[1], Rat::one());
        assert_eq!(p[2], Rat::from_frac(2, 3));

        // Observation 49(2): t^u ♂ v = t^⟨u,v⟩
        let u = v(&[1, 2, -1]);
        let w = v(&[3, 1, 2]);
        let lhs = mars(&pow_vec(&t, &u), &w);
        let rhs = t.pow_i64(dot(&u, &w).to_int().unwrap().to_i64().unwrap());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mars_zero_conventions() {
        // 0^0 = 1 by the paper's convention.
        assert_eq!(mars(&v(&[0, 2]), &v(&[0, 3])), Rat::from_i64(8));
        assert_eq!(mars(&v(&[0]), &v(&[2])), Rat::zero());
    }

    #[test]
    fn observation_49_1() {
        // (u ∘ v) ♂ w = (u ♂ w)(v ♂ w)
        let u = v(&[2, 3, 5]);
        let vv = v(&[7, 1, 2]);
        let w = v(&[1, 2, 3]);
        let lhs = mars(&hadamard(&u, &vv), &w);
        let rhs = mars(&u, &w).mul_ref(&mars(&vv, &w));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn common_denominator() {
        let x = QVec(vec![
            Rat::from_frac(1, 6),
            Rat::from_frac(3, 4),
            Rat::from_i64(2),
        ]);
        let c = x.common_denominator();
        assert_eq!(c, Int::from_i64(12));
        assert!(x.scale(&Rat::from_int(c)).is_integral());
        assert_eq!(v(&[1, 2]).common_denominator(), Int::one());
    }

    #[test]
    fn predicates() {
        assert!(v(&[0, 1, 2]).is_non_negative());
        assert!(!v(&[0, -1, 2]).is_non_negative());
        assert!(v(&[3, 4]).is_integral());
        assert!(!QVec(vec![Rat::from_frac(1, 2)]).is_integral());
        assert_eq!(
            v(&[5, 6]).to_ints().unwrap(),
            vec![Int::from_i64(5), Int::from_i64(6)]
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = dot(&v(&[1]), &v(&[1, 2]));
    }
}
