//! Exact rational arithmetic and linear algebra over ℚ.
//!
//! The decision procedure of the paper (Lemma 31) is a span-membership test in
//! ℚ^k, and the counterexample construction of Sections 5–7 needs
//!
//! * an orthogonal vector to a span that is not orthogonal to a target
//!   vector (Fact 5),
//! * nonsingularity tests and inverses of evaluation matrices (Definitions
//!   37–38, Lemma 46),
//! * rational interior points of the convex cone `C = M(ℝ≥0^k)`
//!   (Corollary 8, Definition 52),
//! * componentwise powers `t^{z⃗} ∘ p⃗` with rational `t` and integer `z⃗`
//!   (Definition 48, Lemma 57).
//!
//! Everything here is exact: no floating point is used anywhere in the
//! workspace, so the decision procedure can never be wrong due to rounding.
//!
//! # The three solver tiers
//!
//! Exactness does not require *computing* over ℚ all the way:
//!
//! 1. **Modular prescreen** ([`modular`]): span / nonsingularity questions
//!    are answered over `ℤ/p` for 2–3 word-size primes first (Montgomery
//!    arithmetic, [`PrimeField`]), then lifted back by CRT + rational
//!    reconstruction and re-verified in exact rational arithmetic — only
//!    exactly verified certificates are returned, everything else falls
//!    back to the exact tiers.  `CQDET_EXACT_LINALG=1` disables this tier.
//! 2. **Incremental echelon** ([`IncrementalBasis`]): an online exact
//!    elimination that inserts one generator at a time, carries
//!    coefficient coordinates, early-exits once a target enters the span,
//!    and is shared across the decision batches of `cqdet-core` /
//!    `cqdet-engine` so fleets of tasks over one view pool never
//!    re-eliminate shared columns.
//! 3. **Exact elimination** ([`QMat`]): dense rational Gauss–Jordan with
//!    smallest-bit-size pivot selection and row content normalization to
//!    curb coefficient blowup; the mandatory fallback and the oracle the
//!    other tiers are differentially tested against.

// The elimination kernels run inside budgeted server requests: failures
// must surface as typed errors (or documented assertions), never stray
// unwraps.  Tests are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod cone;
mod incremental;
mod matrix;
pub mod modular;
mod rat;
mod vector;

pub use cone::{cone_contains, cone_coordinates, interior_cone_point, perturb_along};
pub use incremental::{CheckpointedBasis, IncrementalBasis, RemovalKind};
pub use matrix::{
    orthogonal_witness, span_coefficients, span_coefficients_exact, span_coefficients_exact_gas,
    span_coefficients_gas, span_contains, QMat,
};
pub use modular::{
    exact_linalg_forced, primes, span_solve, span_solve_gas, PrimeField, SpanOutcome,
};

pub use cqdet_parallel::{Budget, Exhausted, Gas, Interrupt};
pub use rat::Rat;
pub use vector::{dot, hadamard, mars, pow_vec, QVec};

pub use cqdet_bigint::{Int, Nat, Sign};
