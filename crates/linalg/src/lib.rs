//! Exact rational arithmetic and linear algebra over ℚ.
//!
//! The decision procedure of the paper (Lemma 31) is a span-membership test in
//! ℚ^k, and the counterexample construction of Sections 5–7 needs
//!
//! * an orthogonal vector to a span that is not orthogonal to a target
//!   vector (Fact 5),
//! * nonsingularity tests and inverses of evaluation matrices (Definitions
//!   37–38, Lemma 46),
//! * rational interior points of the convex cone `C = M(ℝ≥0^k)`
//!   (Corollary 8, Definition 52),
//! * componentwise powers `t^{z⃗} ∘ p⃗` with rational `t` and integer `z⃗`
//!   (Definition 48, Lemma 57).
//!
//! Everything here is exact: no floating point is used anywhere in the
//! workspace, so the decision procedure can never be wrong due to rounding.

mod cone;
mod matrix;
mod rat;
mod vector;

pub use cone::{cone_contains, cone_coordinates, interior_cone_point, perturb_along};
pub use matrix::{orthogonal_witness, span_coefficients, span_contains, QMat};
pub use rat::Rat;
pub use vector::{dot, hadamard, mars, pow_vec, QVec};

pub use cqdet_bigint::{Int, Nat, Sign};
