//! The convex cone `C = M(ℝ≥0^k)` of Definition 52, rational interior points
//! (Corollary 8) and the perturbation `p⃗' = t^{z⃗} ∘ p⃗` of Lemmas 56–57.

use crate::matrix::QMat;
use crate::rat::Rat;
use crate::vector::{hadamard, pow_vec, QVec};

/// Whether `u⃗ ∈ C = M(ℝ≥0^k) = span_{ℝ≥0}{M·e⃗ᵢ}` (Observation 53).
///
/// Requires `M` to be nonsingular (this is how the cone is used in the paper:
/// `M` is the evaluation matrix of a *good* basis). For a nonsingular `M`,
/// `u⃗ ∈ C` iff `M⁻¹·u⃗ ≥ 0` componentwise.
pub fn cone_contains(m: &QMat, u: &QVec) -> bool {
    cone_coordinates(m, u).is_some()
}

/// If `u⃗ ∈ C`, return the (unique, because `M` is nonsingular) coordinates
/// `α⃗ ≥ 0` with `M·α⃗ = u⃗`.
///
/// Solves the system directly (one elimination) instead of inverting `M`
/// (which costs a full `k × 2k` elimination and was re-done per probe in
/// the Lemma 57 perturbation search); nonsingularity is asserted via the
/// modular fast path of [`QMat::is_nonsingular`].
// Documented contract: the caller must pass a nonsingular matrix, and a
// nonsingular system is always solvable.
#[allow(clippy::expect_used)]
pub fn cone_coordinates(m: &QMat, u: &QVec) -> Option<QVec> {
    assert!(
        m.is_nonsingular(),
        "cone_coordinates requires a nonsingular matrix"
    );
    let alpha = m.solve(u).expect("nonsingular systems are solvable");
    if alpha.is_non_negative() {
        Some(alpha)
    } else {
        None
    }
}

/// Corollary 8: a rational point `p⃗ ∈ C ∩ ℚ^k` around which some ball is
/// contained in `C`.
///
/// We take `p⃗ = M·𝟙`: the all-ones vector is interior to `ℝ≥0^k` and a
/// nonsingular `M` is a homeomorphism (Fact 6), so its image is interior to
/// `C`; it is rational because `M` is.
pub fn interior_cone_point(m: &QMat) -> QVec {
    assert!(
        m.is_nonsingular(),
        "interior_cone_point requires a nonsingular matrix"
    );
    m.mul_vec(&QVec::ones(m.ncols()))
}

/// Lemma 57: find a rational `t ≠ 1` such that `t^{z⃗} ∘ p⃗ ∈ C`.
///
/// Returns `(t, p⃗')` with `p⃗' = t^{z⃗} ∘ p⃗`.  The search walks
/// `t = 1 + 2^{-j}` for growing `j`; continuity of `t ↦ t^{z⃗} ∘ p⃗` at `t = 1`
/// (and the fact that `p⃗` is interior) guarantees termination.
pub fn perturb_along(m: &QMat, p: &QVec, z: &QVec) -> (Rat, QVec) {
    assert!(
        cone_contains(m, p),
        "perturb_along: the base point must lie in the cone"
    );
    for j in 1..512usize {
        let denom = cqdet_bigint::Int::from_nat(cqdet_bigint::Nat::one().shl_bits(j));
        let t = Rat::one() + Rat::new(cqdet_bigint::Int::one(), denom);
        let candidate = hadamard(&pow_vec(&t, z), p);
        if cone_contains(m, &candidate) {
            return (t, candidate);
        }
    }
    unreachable!(
        "perturb_along failed to find t; this contradicts Lemma 57 (is the base point interior?)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot;

    fn m(rows: &[&[i64]]) -> QMat {
        QMat::from_i64_rows(rows)
    }

    fn v(vals: &[i64]) -> QVec {
        QVec::from_i64s(vals)
    }

    #[test]
    fn cone_membership_identity() {
        let id = QMat::identity(2);
        assert!(cone_contains(&id, &v(&[1, 2])));
        assert!(cone_contains(&id, &v(&[0, 0])));
        assert!(!cone_contains(&id, &v(&[-1, 2])));
    }

    #[test]
    fn cone_membership_example_54() {
        // Example 54: M = [[1,4],[1,2]] (rows w1, w2; columns s1, s2).
        let m54 = m(&[&[1, 4], &[1, 2]]);
        // Column vectors generate the cone.
        assert!(cone_contains(&m54, &v(&[1, 1])));
        assert!(cone_contains(&m54, &v(&[4, 2])));
        assert!(cone_contains(&m54, &v(&[5, 3])));
        // A point outside the cone (below the s2 ray).
        assert!(!cone_contains(&m54, &v(&[4, 1])));
        // Coordinates recompose.
        let alpha = cone_coordinates(&m54, &v(&[5, 3])).unwrap();
        assert_eq!(m54.mul_vec(&alpha), v(&[5, 3]));
    }

    #[test]
    fn interior_point_is_in_cone() {
        let m54 = m(&[&[1, 4], &[1, 2]]);
        let p = interior_cone_point(&m54);
        assert_eq!(p, v(&[5, 3]));
        assert!(cone_contains(&m54, &p));
        let alpha = cone_coordinates(&m54, &p).unwrap();
        // Strictly positive coordinates → interior.
        assert!(alpha.iter().all(|a| a.is_positive()));
    }

    #[test]
    fn perturb_preserves_cone_and_moves_target() {
        let m54 = m(&[&[1, 4], &[1, 2]]);
        let p = interior_cone_point(&m54);
        let z = v(&[1, -2]);
        let (t, p2) = perturb_along(&m54, &p, &z);
        assert!(t != Rat::one());
        assert!(cone_contains(&m54, &p2));
        assert_ne!(p2, p);
        // Observation 49(2): for any integer vector v with ⟨z,v⟩=0 the
        // ♂-values of p and p' agree; check the underlying dot-product fact.
        let orth = v(&[2, 1]);
        assert_eq!(dot(&z, &orth), Rat::zero());
    }

    #[test]
    #[should_panic(expected = "nonsingular")]
    fn interior_point_requires_nonsingular() {
        let singular = m(&[&[2, 4], &[1, 2]]);
        let _ = interior_cone_point(&singular);
    }
}
