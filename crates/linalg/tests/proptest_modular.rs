//! Differential property tests for the tiered exact solver: the modular
//! prescreen ([`span_solve`] / the tiered [`span_coefficients`]) and the
//! incremental echelon form ([`IncrementalBasis`]) against the pure-`Rat`
//! elimination oracle ([`span_coefficients_exact`] / `QMat::rank`) —
//! including the adversarial regimes the modular tier must survive: a
//! solver prime dividing a denominator (bad prime) and a whole system that
//! vanishes mod a prime (rank undercount).

use cqdet_linalg::{
    primes, span_coefficients, span_coefficients_exact, span_solve, IncrementalBasis, Int, Nat,
    QMat, QVec, Rat, SpanOutcome,
};
use proptest::prelude::*;

/// A small rational from a (numerator, denominator-index) pair.
fn rat(n: i64, d_index: u8) -> Rat {
    let d = [1i64, 2, 3, 5][usize::from(d_index % 4)];
    Rat::from_frac(n, d)
}

/// Chop a flat entry list into `count` vectors of dimension `k`.
fn vectors_of(entries: &[(i64, u8)], count: usize, k: usize) -> Vec<QVec> {
    (0..count)
        .map(|c| {
            QVec(
                (0..k)
                    .map(|i| rat(entries[c * k + i].0, entries[c * k + i].1))
                    .collect(),
            )
        })
        .collect()
}

/// `Σ αᵢ·vᵢ`.
fn combine(vectors: &[QVec], alpha: &QVec) -> QVec {
    let mut acc = QVec::zeros(vectors[0].dim());
    for (a, v) in alpha.iter().zip(vectors) {
        acc = &acc + &v.scale(a);
    }
    acc
}

/// The first solver prime as an exact rational.
fn prime_rat(index: usize) -> Rat {
    Rat::from_int(Int::from_nat(Nat::from_u64(primes()[index])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Membership and certificates agree with the exact oracle on random
    /// small rational systems.  `scale_up` multiplies the whole system by
    /// 2⁹⁶ (membership-invariant) to push it over the word-size threshold
    /// so the modular path — not the tiny-system short-circuit — answers.
    #[test]
    fn tiered_span_matches_exact_oracle(
        count in 1usize..5,
        k in 1usize..5,
        entries in prop::collection::vec((-8i64..9, 0u8..4), 25),
        target_entries in prop::collection::vec((-8i64..9, 0u8..4), 5),
        scale_up in 0u8..2,
    ) {
        let c = if scale_up == 1 {
            Rat::from_int(Int::from_nat(Nat::one().shl_bits(96)))
        } else {
            Rat::from_i64(1)
        };
        let vectors: Vec<QVec> = vectors_of(&entries, count, k)
            .into_iter()
            .map(|v| v.scale(&c))
            .collect();
        let target = QVec((0..k).map(|i| rat(target_entries[i].0, target_entries[i].1)).collect())
            .scale(&c);
        let exact = span_coefficients_exact(&vectors, &target);
        let tiered = span_coefficients(&vectors, &target);
        prop_assert_eq!(exact.is_some(), tiered.is_some(), "membership must agree");
        if let Some(alpha) = &tiered {
            prop_assert_eq!(alpha.dim(), count);
            prop_assert_eq!(combine(&vectors, alpha), target.clone(), "certificate must be exact");
        }
        // The raw outcome never lies either way.
        match span_solve(&vectors, &target) {
            SpanOutcome::Solved(alpha) => {
                prop_assert!(exact.is_some());
                prop_assert_eq!(combine(&vectors, &alpha), target);
            }
            SpanOutcome::Rejected => prop_assert!(exact.is_none()),
            SpanOutcome::Fallback => {}
        }
    }

    /// Targets planted as integer combinations are always found, with an
    /// exactly reconstructing certificate.
    #[test]
    fn planted_combinations_are_found(
        count in 1usize..5,
        k in 1usize..5,
        entries in prop::collection::vec((-7i64..8, 0u8..4), 25),
        coeffs in prop::collection::vec(-6i64..7, 5),
    ) {
        // Scaled over the word-size threshold so the modular lift (not the
        // tiny-system short-circuit) produces the certificate.
        let c = Rat::from_int(Int::from_nat(Nat::one().shl_bits(96)));
        let vectors: Vec<QVec> = vectors_of(&entries, count, k)
            .into_iter()
            .map(|v| v.scale(&c))
            .collect();
        let planted = QVec::from_i64s(&coeffs[..count]);
        let target = combine(&vectors, &planted);
        let alpha = span_coefficients(&vectors, &target)
            .expect("a planted combination is in the span");
        prop_assert_eq!(combine(&vectors, &alpha), target);
    }

    /// Bad primes: denominators divisible by solver prime 1 (and sometimes
    /// prime 2 as well) force the prescreen to skip primes or fall back —
    /// never to answer wrong.
    #[test]
    fn bad_primes_are_skipped_not_trusted(
        count in 1usize..4,
        k in 1usize..4,
        entries in prop::collection::vec((-6i64..7, 0u8..4), 16),
        target_entries in prop::collection::vec((-6i64..7, 0u8..4), 4),
        poison_second in 0u8..2,
    ) {
        let mut divisor = prime_rat(0);
        if poison_second == 1 {
            divisor = divisor.mul_ref(&prime_rat(1));
        }
        // Scale the whole system by 1/p (or 1/(p₁p₂)): every non-zero entry's
        // denominator becomes divisible by the solver prime(s).
        let vectors: Vec<QVec> = vectors_of(&entries, count, k)
            .into_iter()
            .map(|v| v.scale(&divisor.recip()))
            .collect();
        let target = QVec((0..k).map(|i| rat(target_entries[i].0, target_entries[i].1)).collect())
            .scale(&divisor.recip());
        let exact = span_coefficients_exact(&vectors, &target);
        let tiered = span_coefficients(&vectors, &target);
        prop_assert_eq!(exact.is_some(), tiered.is_some());
        if let Some(alpha) = tiered {
            prop_assert_eq!(combine(&vectors, &alpha), target);
        }
    }

    /// Rank undercount: every entry a multiple of solver prime 1, so the
    /// system is identically zero mod p₁ and its mod-p rank profile is
    /// empty; answers still match the oracle exactly.
    #[test]
    fn rank_undercount_cannot_corrupt(
        count in 1usize..4,
        k in 1usize..4,
        entries in prop::collection::vec((-6i64..7, 0u8..4), 16),
        target_entries in prop::collection::vec((-6i64..7, 0u8..4), 4),
    ) {
        // p₁² keeps the system ≡ 0 (mod p₁) *and* over the word-size
        // threshold, so the modular tier engages rather than short-circuits.
        let p = prime_rat(0).mul_ref(&prime_rat(0));
        let vectors: Vec<QVec> = vectors_of(&entries, count, k)
            .into_iter()
            .map(|v| v.scale(&p))
            .collect();
        let target = QVec((0..k).map(|i| rat(target_entries[i].0, target_entries[i].1)).collect())
            .scale(&p);
        let exact = span_coefficients_exact(&vectors, &target);
        let tiered = span_coefficients(&vectors, &target);
        prop_assert_eq!(exact.is_some(), tiered.is_some());
        if let Some(alpha) = tiered {
            prop_assert_eq!(combine(&vectors, &alpha), target);
        }
    }

    /// The incremental echelon form agrees with the dense oracle: same
    /// rank, same membership, and its coefficients reconstruct the target.
    #[test]
    fn incremental_basis_matches_rref_oracle(
        count in 1usize..6,
        k in 1usize..5,
        entries in prop::collection::vec((-8i64..9, 0u8..4), 30),
        target_entries in prop::collection::vec((-8i64..9, 0u8..4), 5),
    ) {
        let vectors = vectors_of(&entries, count, k);
        let target = QVec((0..k).map(|i| rat(target_entries[i].0, target_entries[i].1)).collect());
        let mut basis = IncrementalBasis::new(k);
        for v in &vectors {
            basis.insert(v);
        }
        prop_assert_eq!(basis.rank(), QMat::from_cols(&vectors).rank(), "rank oracle");
        let exact = span_coefficients_exact(&vectors, &target);
        let solved = basis.solve(&target);
        prop_assert_eq!(exact.is_some(), solved.is_some(), "membership oracle");
        if let Some(alpha) = solved {
            prop_assert_eq!(combine(&vectors, &alpha), target.clone());
        }
        // The lazily fed variant agrees too, and never feeds past the
        // spanning prefix.
        let mut lazy = IncrementalBasis::new(k);
        let extended = lazy.solve_extend(&target, &vectors);
        prop_assert_eq!(extended.is_some(), exact.is_some());
        prop_assert!(lazy.len() <= vectors.len());
        if let Some(alpha) = extended {
            let mut padded = alpha.0;
            padded.resize(vectors.len(), Rat::zero());
            prop_assert_eq!(combine(&vectors, &QVec(padded)), target.clone());
            // Early exit: the prefix that was fed already spans the target.
            let prefix: Vec<QVec> = vectors[..lazy.len()].to_vec();
            prop_assert!(span_coefficients_exact(&prefix, &target).is_some());
        }
    }

    /// `rref` with content normalization and smallest-pivot selection still
    /// produces the canonical reduced echelon form: idempotent, rank-
    /// consistent, pivot entries one.
    #[test]
    fn rref_remains_canonical(
        rows in 2usize..5,
        cols in 2usize..5,
        entries in prop::collection::vec((-9i64..10, 0u8..4), 25),
        scale_num in 1i64..500,
        scale_den in 1i64..500,
    ) {
        let m = QMat::from_rows(
            &(0..rows)
                .map(|r| QVec((0..cols).map(|c| rat(entries[r * cols + c].0, entries[r * cols + c].1)).collect()))
                .collect::<Vec<_>>(),
        );
        let (r, rank, pivots) = m.rref();
        prop_assert_eq!(rank, pivots.len());
        for (row, &col) in pivots.iter().enumerate() {
            prop_assert!(r.get(row, col).is_one(), "pivot entries must be 1");
            for other in 0..rows {
                if other != row {
                    prop_assert!(r.get(other, col).is_zero(), "pivot columns are unit");
                }
            }
        }
        let (rr, rrank, rpivots) = r.rref();
        prop_assert_eq!(&rr, &r, "rref is idempotent");
        prop_assert_eq!(rrank, rank);
        prop_assert_eq!(rpivots, pivots.clone());
        // Row scaling changes neither the RREF nor the rank (content
        // normalization at work).
        let s = Rat::from_frac(scale_num, scale_den);
        let scaled = QMat::from_rows(
            &(0..rows).map(|i| m.row(i).scale(&s)).collect::<Vec<_>>(),
        );
        let (sr, srank, spivots) = scaled.rref();
        prop_assert_eq!(sr, r);
        prop_assert_eq!(srank, rank);
        prop_assert_eq!(spivots, pivots);
    }
}
