//! Differential tests for the interleaved dual-prime elimination: the lane
//! kernel must agree with its sequential per-lane twin (the pre-rewrite
//! shape, selectable with `CQDET_SEQUENTIAL_LANES=1`) and with the exact
//! pure-`Rat` oracle — on random systems, and in the adversarial bad-prime
//! regimes where one or both solver-prime lanes must be skipped or swapped.
//!
//! The tests flip the process-wide `force_sequential_lanes` knob, so they
//! live in this dedicated test binary; both kernel shapes are exact (they
//! compute the identical row-op sequence), so the knob is restored before
//! every assertion that could outlive it.

use cqdet_linalg::modular::force_sequential_lanes;
use cqdet_linalg::{primes, span_coefficients, span_coefficients_exact, Int, Nat, QVec, Rat};
use proptest::prelude::*;

/// Scale factor pushing entries past the word-size prescreen cutoff.
fn big_shift() -> Rat {
    Rat::from_int(Int::from_nat(Nat::one().shl_bits(96)))
}

/// Chop a flat entry list into `count` integer vectors of dimension `k`,
/// scaled so the modular tier engages.
fn vectors_of(entries: &[i64], count: usize, k: usize) -> Vec<QVec> {
    let c = big_shift();
    (0..count)
        .map(|v| {
            QVec(
                (0..k)
                    .map(|i| Rat::from_i64(entries[v * k + i]).mul_ref(&c))
                    .collect(),
            )
        })
        .collect()
}

/// `Σ αᵢ·vᵢ`.
fn combine(vectors: &[QVec], alpha: &[i64]) -> QVec {
    let mut acc = QVec::zeros(vectors[0].dim());
    for (&a, v) in alpha.iter().zip(vectors) {
        acc = &acc + &v.scale(&Rat::from_i64(a));
    }
    acc
}

/// Both kernel shapes and the exact oracle, compared on one instance.
fn assert_all_paths_agree(vectors: &[QVec], target: &QVec, ctx: &str) {
    let interleaved = span_coefficients(vectors, target);
    force_sequential_lanes(true);
    let sequential = span_coefficients(vectors, target);
    force_sequential_lanes(false);
    let exact = span_coefficients_exact(vectors, target);
    assert_eq!(interleaved, sequential, "kernel shapes disagree: {ctx}");
    assert_eq!(
        interleaved, exact,
        "modular tier disagrees with exact: {ctx}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Planted in-span targets and random (usually out-of-span) targets:
    /// interleaved, sequential, and exact all agree.
    #[test]
    fn dual_kernels_agree_with_exact(
        entries in prop::collection::vec(-9i64..10, 12),
        alpha in prop::collection::vec(-4i64..5, 3),
        stray in prop::collection::vec(-9i64..10, 4),
    ) {
        let vectors = vectors_of(&entries, 3, 4);
        let planted = combine(&vectors, &alpha);
        assert_all_paths_agree(&vectors, &planted, "planted");
        let random_target = QVec(
            stray.iter().map(|&v| Rat::from_i64(v).mul_ref(&big_shift())).collect(),
        );
        assert_all_paths_agree(&vectors, &random_target, "random");
    }

    /// Bad-prime skip: a denominator divisible by one solver prime kills
    /// that prime's lane (second prime) or swaps the lanes (first prime);
    /// divisible by both, the modular tier falls back — in every case both
    /// kernel shapes still match the exact answer.
    #[test]
    fn bad_primes_skip_identically(which in 0usize..3, alpha in -4i64..5, dim in 2usize..5) {
        let den = match which {
            0 => Int::from_i64(primes()[0] as i64),
            1 => Int::from_i64(primes()[1] as i64),
            _ => Int::from_i64(primes()[0] as i64).mul_ref(&Int::from_i64(primes()[1] as i64)),
        };
        let bad = Rat::new(Int::one(), den).mul_ref(&big_shift());
        let v = QVec((1..=dim as i64).map(|i| bad.mul_ref(&Rat::from_i64(i))).collect());
        let inside = v.scale(&Rat::from_i64(alpha));
        assert_all_paths_agree(std::slice::from_ref(&v), &inside, "bad-prime inside");
        // A target off the line must be rejected through every path too.
        let mut off = inside.0.clone();
        off[0] = off[0].add_ref(&Rat::one());
        assert_all_paths_agree(&[v], &QVec(off), "bad-prime outside");
    }
}
