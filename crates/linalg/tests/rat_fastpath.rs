//! Differential tests for the machine-word fast path in `Rat` arithmetic:
//! results must agree with plain fraction arithmetic done in `i128`, and the
//! fast path must agree with the bigint path when the same value is reached
//! through large intermediate components (across the overflow boundary).

use cqdet_bigint::Int;
use cqdet_linalg::Rat;
use proptest::prelude::*;

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Reference: reduce `n/d` with plain i128 arithmetic.
fn reduced(n: i128, d: i128) -> (i128, i128) {
    assert!(d != 0);
    let s = if (n < 0) != (d < 0) && n != 0 { -1 } else { 1 };
    let (n, d) = (n.abs(), d.abs());
    let g = gcd(n, d);
    (s * (n / g), d / g)
}

fn rat_parts(r: &Rat) -> (i128, i128) {
    (
        r.numer().to_i128().expect("small test values"),
        Int::from_nat(r.denom().clone())
            .to_i128()
            .expect("small test values"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fast-path add/sub/mul/div agree with i128 fraction arithmetic.
    #[test]
    fn ops_match_i128_fractions(an in -50i64..50, ad in 1i64..30,
                                bn in -50i64..50, bd in 1i64..30) {
        let a = Rat::from_frac(an, ad);
        let b = Rat::from_frac(bn, bd);
        let (an, ad, bn, bd) = (an as i128, ad as i128, bn as i128, bd as i128);

        let sum = a.add_ref(&b);
        prop_assert_eq!(rat_parts(&sum), reduced(an * bd + bn * ad, ad * bd));

        let diff = a.sub_ref(&b);
        prop_assert_eq!(rat_parts(&diff), reduced(an * bd - bn * ad, ad * bd));

        let prod = a.mul_ref(&b);
        prop_assert_eq!(rat_parts(&prod), reduced(an * bn, ad * bd));

        if bn != 0 {
            let quot = a.div_ref(&b);
            prop_assert_eq!(rat_parts(&quot), reduced(an * bd, ad * bn));
        }

        // Ordering agrees with cross-multiplication.
        prop_assert_eq!(a.cmp(&b), (an * bd).cmp(&(bn * ad)));
    }

    /// The same value computed through the bigint slow path (large unreduced
    /// components fed to `Rat::new`) equals the fast-path value.
    #[test]
    fn slow_path_reaches_same_canonical_value(n in -40i64..40, d in 1i64..20,
                                              scale_pow in 1u64..4) {
        let fast = Rat::from_frac(n, d);
        // Scale numerator and denominator by 10^(20·k): far beyond u64, so
        // Rat::new must reduce through the bigint path.
        let big = Int::from_i64(10).pow(20 * scale_pow);
        let scaled_num = Int::from_i64(n).mul_ref(&big);
        let scaled_den = Int::from_i64(d).mul_ref(&big);
        let slow = Rat::new(scaled_num, scaled_den);
        prop_assert_eq!(&fast, &slow);
        // And arithmetic with a boundary-straddling partner round-trips.
        let huge = Rat::new(big.clone(), Int::one());
        let back = fast.add_ref(&huge).sub_ref(&huge);
        prop_assert_eq!(back, fast);
        let round = fast.mul_ref(&huge).div_ref(&huge);
        prop_assert_eq!(round, Rat::from_frac(n, d));
    }

    /// Field laws hold across mixed fast/slow operands.
    #[test]
    fn mixed_repr_field_laws(n in -30i64..30, d in 1i64..15, k in 1u64..3) {
        let small = Rat::from_frac(n, d);
        let big = Rat::new(Int::from_i64(7).pow(30 * k), Int::from_i64(3).pow(20 * k));
        prop_assert_eq!(small.add_ref(&big), big.add_ref(&small));
        prop_assert_eq!(small.mul_ref(&big), big.mul_ref(&small));
        let assoc_l = small.add_ref(&big).add_ref(&small);
        let assoc_r = small.add_ref(&big.add_ref(&small));
        prop_assert_eq!(assoc_l, assoc_r);
        if !small.is_zero() {
            prop_assert_eq!(small.mul_ref(&small.recip()), Rat::one());
        }
    }
}
