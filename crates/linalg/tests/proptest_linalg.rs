//! Property-based tests for the exact linear algebra layer.

use cqdet_linalg::{
    cone_contains, cone_coordinates, dot, hadamard, interior_cone_point, mars, orthogonal_witness,
    perturb_along, pow_vec, span_coefficients, span_contains, Int, QMat, QVec, Rat,
};
use proptest::prelude::*;

/// A small rational from an (numerator, denominator-index) pair.
fn rat(n: i64, d_index: u8) -> Rat {
    let d = [1i64, 2, 3, 5][usize::from(d_index % 4)];
    Rat::from_frac(n, d)
}

fn qvec(values: &[(i64, u8)]) -> QVec {
    QVec(values.iter().map(|&(n, d)| rat(n, d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rat_field_laws(a in -20i64..20, b in -20i64..20, c in -20i64..20,
                      da in 0u8..4, db in 0u8..4, dc in 0u8..4) {
        let (x, y, z) = (rat(a, da), rat(b, db), rat(c, dc));
        // Commutativity / associativity / distributivity.
        prop_assert_eq!(x.add_ref(&y), y.add_ref(&x));
        prop_assert_eq!(x.mul_ref(&y), y.mul_ref(&x));
        prop_assert_eq!(x.add_ref(&y).add_ref(&z), x.add_ref(&y.add_ref(&z)));
        prop_assert_eq!(x.mul_ref(&y).mul_ref(&z), x.mul_ref(&y.mul_ref(&z)));
        prop_assert_eq!(x.mul_ref(&y.add_ref(&z)), x.mul_ref(&y).add_ref(&x.mul_ref(&z)));
        // Additive and multiplicative inverses.
        prop_assert_eq!(x.add_ref(&x.neg_ref()), Rat::zero());
        if !x.is_zero() {
            prop_assert_eq!(x.mul_ref(&x.recip()), Rat::one());
        }
        // Ordering is compatible with addition.
        if x < y {
            prop_assert!(x.add_ref(&z) < y.add_ref(&z));
        }
    }

    #[test]
    fn rat_pow_laws(a in -9i64..9, d in 0u8..4, e1 in -4i64..5, e2 in -4i64..5) {
        let x = rat(if a == 0 { 1 } else { a }, d);
        prop_assert_eq!(x.pow_i64(e1).mul_ref(&x.pow_i64(e2)), x.pow_i64(e1 + e2));
        prop_assert_eq!(x.pow_i64(e1).pow_i64(e2), x.pow_i64(e1 * e2));
    }

    #[test]
    fn dot_and_hadamard_identities(xs in prop::collection::vec((-10i64..10, 0u8..4), 1..6),
                                   ys in prop::collection::vec((-10i64..10, 0u8..4), 1..6)) {
        let k = xs.len().min(ys.len());
        let u = qvec(&xs[..k]);
        let v = qvec(&ys[..k]);
        prop_assert_eq!(dot(&u, &v), dot(&v, &u));
        prop_assert_eq!(hadamard(&u, &v), hadamard(&v, &u));
        // ⟨u, v⟩ = Σ (u ∘ v)
        let had = hadamard(&u, &v);
        let mut sum = Rat::zero();
        for x in had.iter() {
            sum += x;
        }
        prop_assert_eq!(sum, dot(&u, &v));
    }

    /// Observation 49: (u ∘ v) ♂ w = (u♂w)(v♂w) and t^u ♂ v = t^⟨u,v⟩.
    #[test]
    fn observation_49(us in prop::collection::vec(0i64..6, 1..5),
                      vs in prop::collection::vec(0i64..6, 1..5),
                      ws in prop::collection::vec(-3i64..4, 1..5),
                      tn in 1i64..5, td in 1i64..5) {
        let k = us.len().min(vs.len()).min(ws.len());
        let u = QVec::from_i64s(&us[..k]);
        let v = QVec::from_i64s(&vs[..k]);
        let w = QVec::from_i64s(&ws[..k]);
        // The first identity is only defined when no zero base meets a
        // negative exponent (0^negative is undefined, and mars panics).
        let defined = (0..k).all(|i| ws[i] >= 0 || (us[i] != 0 && vs[i] != 0));
        if defined {
            prop_assert_eq!(
                mars(&hadamard(&u, &v), &w),
                mars(&u, &w).mul_ref(&mars(&v, &w))
            );
        }
        let t = Rat::from_frac(tn, td);
        let lhs = mars(&pow_vec(&t, &w), &u);
        let e = dot(&w, &u).to_int().unwrap().to_i64().unwrap();
        prop_assert_eq!(lhs, t.pow_i64(e));
    }

    /// Solving, inverses and determinants are mutually consistent.
    #[test]
    fn matrix_solve_inverse_consistency(entries in prop::collection::vec(-5i64..6, 9),
                                        rhs in prop::collection::vec(-5i64..6, 3)) {
        let m = QMat::from_i64_rows(&[&entries[0..3], &entries[3..6], &entries[6..9]]);
        let b = QVec::from_i64s(&rhs);
        let det = m.determinant();
        prop_assert_eq!(det.is_zero(), !m.is_nonsingular());
        match m.inverse() {
            Some(inv) => {
                prop_assert!(!det.is_zero());
                prop_assert_eq!(m.matmul(&inv), QMat::identity(3));
                let x = m.solve(&b).expect("nonsingular systems are solvable");
                prop_assert_eq!(m.mul_vec(&x), b.clone());
                prop_assert_eq!(inv.mul_vec(&b), x);
            }
            None => prop_assert!(det.is_zero()),
        }
        // Whenever solve succeeds the solution actually solves the system.
        if let Some(x) = m.solve(&b) {
            prop_assert_eq!(m.mul_vec(&x), b);
        }
        // rank ≤ 3 and rank = 3 iff nonsingular.
        let rank = m.rank();
        prop_assert!(rank <= 3);
        prop_assert_eq!(rank == 3, m.is_nonsingular());
    }

    /// Null-space vectors are orthogonal to the row space; Fact 5 holds.
    #[test]
    fn null_space_and_fact_5(entries in prop::collection::vec(-4i64..5, 8),
                             target in prop::collection::vec(-4i64..5, 4)) {
        let rows = vec![
            QVec::from_i64s(&entries[0..4]),
            QVec::from_i64s(&entries[4..8]),
        ];
        let m = QMat::from_rows(&rows);
        for z in m.null_space() {
            prop_assert!(m.mul_vec(&z).is_zero());
        }
        let t = QVec::from_i64s(&target);
        let in_span = span_contains(&rows, &t);
        match orthogonal_witness(&rows, &t) {
            Some(z) => {
                prop_assert!(!in_span, "Fact 5 witness exists only outside the span");
                for r in &rows {
                    prop_assert_eq!(dot(&z, r), Rat::zero());
                }
                prop_assert!(!dot(&z, &t).is_zero());
            }
            None => prop_assert!(in_span),
        }
        // Span coefficients, when they exist, reconstruct the target.
        if let Some(coeffs) = span_coefficients(&rows, &t) {
            let mut acc = QVec::zeros(4);
            for (c, r) in coeffs.iter().zip(rows.iter()) {
                acc = &acc + &r.scale(c);
            }
            prop_assert_eq!(acc, t);
        }
    }

    /// Cone membership: M·u for u ≥ 0 is always in the cone; interior points
    /// and Lemma 57 perturbations stay in the cone.
    #[test]
    fn cone_properties(diag in prop::collection::vec(1i64..6, 3),
                       off in prop::collection::vec(0i64..3, 6),
                       probe in prop::collection::vec(0i64..5, 3),
                       z in prop::collection::vec(-2i64..3, 3)) {
        // Diagonally dominant ⇒ nonsingular.
        let m = QMat::from_i64_rows(&[
            &[diag[0] + off[0] + off[1], off[0], off[1]],
            &[off[2], diag[1] + off[2] + off[3], off[3]],
            &[off[4], off[5], diag[2] + off[4] + off[5]],
        ]);
        prop_assume!(m.is_nonsingular());
        let u = QVec::from_i64s(&probe);
        let point = m.mul_vec(&u);
        prop_assert!(cone_contains(&m, &point));
        let coords = cone_coordinates(&m, &point).unwrap();
        prop_assert_eq!(m.mul_vec(&coords), point);
        let p = interior_cone_point(&m);
        prop_assert!(cone_contains(&m, &p));
        let zv = QVec::from_i64s(&z);
        let (t, p2) = perturb_along(&m, &p, &zv);
        prop_assert!(cone_contains(&m, &p2));
        if zv.is_zero() {
            prop_assert_eq!(&p2, &p);
        } else {
            prop_assert!(t != Rat::one());
        }
    }

    #[test]
    fn vandermonde_nonsingular_iff_distinct(points in prop::collection::vec(-6i64..7, 2..5)) {
        let rats: Vec<Rat> = points.iter().map(|&p| Rat::from_i64(p)).collect();
        let m = QMat::vandermonde(&rats);
        let mut sorted = points.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let distinct = sorted.len() == points.len();
        prop_assert_eq!(m.is_nonsingular(), distinct, "Lemma 46");
    }

    #[test]
    fn common_denominator_clears(xs in prop::collection::vec((-12i64..12, 1i64..9), 1..6)) {
        let v = QVec(xs.iter().map(|&(n, d)| Rat::from_frac(n, d)).collect());
        let c = v.common_denominator();
        prop_assert!(c >= Int::one());
        prop_assert!(v.scale(&Rat::from_int(c)).is_integral());
    }
}
