//! Fuel parity across the dual-lane elimination shapes: `span_coefficients`
//! charges identical step/byte totals whether the interleaved kernel or its
//! sequential per-lane twin runs.  This holds by construction — both shapes
//! compute the identical row-op sequence and share one charging site
//! (`2·width` steps per row operation, outside the kernel branch) — and
//! this test pins the construction on in-span, out-of-span, and bad-prime
//! workloads.
//!
//! Flips the process-wide `force_sequential_lanes` knob → dedicated binary.

use cqdet_linalg::modular::force_sequential_lanes;
use cqdet_linalg::{primes, span_coefficients_gas, Budget, Gas, Int, Nat, QVec, Rat};
use cqdet_parallel::CancelToken;

/// Run one metered solve and return `(answer, steps, bytes)`.
fn metered(vectors: &[QVec], target: &QVec) -> (Option<QVec>, u64, u64) {
    let ctl = CancelToken::new();
    let budget = Budget::with_limits(Some(u64::MAX), Some(u64::MAX));
    let mut gas = Gas::new(&ctl, &budget, "test");
    let answer =
        span_coefficients_gas(vectors, target, &mut gas).expect("budget is effectively unlimited");
    (answer, budget.steps_spent(), budget.bytes_spent())
}

/// A fixed dense integer system with big entries (so the modular tier
/// engages) and a planted in-span target.
fn workload() -> (Vec<QVec>, QVec, QVec) {
    let c = Rat::from_int(Int::from_nat(Nat::one().shl_bits(96)));
    let mut state = 0x5EED_CAFEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 19) as i64 - 9
    };
    let vectors: Vec<QVec> = (0..6)
        .map(|_| QVec((0..16).map(|_| Rat::from_i64(next()).mul_ref(&c)).collect()))
        .collect();
    let mut inside = QVec::zeros(16);
    for (i, v) in vectors.iter().enumerate() {
        inside = &inside + &v.scale(&Rat::from_i64(i as i64 % 5 - 2));
    }
    let outside = QVec((0..16).map(|_| Rat::from_i64(next()).mul_ref(&c)).collect());
    (vectors, inside, outside)
}

#[test]
fn span_coefficients_charges_identically_on_both_kernels() {
    let (vectors, inside, outside) = workload();
    // A bad-prime instance: lane 1's prime divides the denominators.
    let bad = Rat::new(Int::one(), Int::from_i64(primes()[1] as i64))
        .mul_ref(&Rat::from_int(Int::from_nat(Nat::one().shl_bits(96))));
    let bad_v = QVec(vec![bad.clone(), bad.mul_ref(&Rat::from_i64(2))]);
    let bad_t = bad_v.scale(&Rat::from_i64(3));
    let cases: Vec<(Vec<QVec>, QVec)> = vec![
        (vectors.clone(), inside),
        (vectors, outside),
        (vec![bad_v], bad_t),
    ];
    for (i, (vs, t)) in cases.iter().enumerate() {
        let (fast_answer, fast_steps, fast_bytes) = metered(vs, t);
        force_sequential_lanes(true);
        let (slow_answer, slow_steps, slow_bytes) = metered(vs, t);
        force_sequential_lanes(false);
        assert_eq!(fast_answer, slow_answer, "case {i}: answers differ");
        assert_eq!(fast_steps, slow_steps, "case {i}: step totals differ");
        assert_eq!(fast_bytes, slow_bytes, "case {i}: byte totals differ");
        assert!(fast_steps > 0, "case {i}: the workload must be metered");
    }
}
