//! Structures over the Theorem 2 schema, and the counterexample pair built
//! from a solution of the Diophantine instance (Lemma 63 (⇐)).

use crate::encoding::{encode, unknown_relation, HilbertEncoding};
use crate::monomial::DiophantineInstance;
use cqdet_bigint::{Int, Nat};
use cqdet_query::eval::eval_boolean_ucq;
use cqdet_structure::Structure;
use std::collections::BTreeMap;

/// Build the structure `D` with `D_{Xᵢ} = assignment(xᵢ)` unary facts for each
/// unknown, plus the nullary markers `H` and/or `C` as requested.
pub fn structure_for_assignment(
    encoding: &HilbertEncoding,
    assignment: &BTreeMap<String, u64>,
    with_h: bool,
    with_c: bool,
) -> Structure {
    let mut d = Structure::new(encoding.schema.clone());
    if with_h {
        d.add("H", &[]);
    }
    if with_c {
        d.add("C", &[]);
    }
    for x in encoding.instance.unknowns() {
        let value = assignment.get(&x).copied().unwrap_or(0);
        let rel = unknown_relation(&x);
        for j in 0..value {
            d.add(&rel, &[j]);
        }
    }
    d
}

/// Lemma 63 (⇐): from a solution of the instance, build the pair `(D, D′)`
/// with `D_H = 1, D_C = 0` and `D′_H = 0, D′_C = 1` and the same `Xᵢ` counts.
///
/// The pair satisfies `v(D) = v(D′)` for every view of the encoding and
/// `q(D) ≠ q(D′)`, refuting `V ⟶_bag q`.
///
/// Panics if `assignment` is not actually a solution.
pub fn counterexample_from_solution(
    instance: &DiophantineInstance,
    assignment: &BTreeMap<String, u64>,
) -> (HilbertEncoding, Structure, Structure) {
    assert!(
        instance.is_solution(assignment),
        "counterexample_from_solution requires a genuine solution of the instance"
    );
    let encoding = encode(instance);
    let d = structure_for_assignment(&encoding, assignment, true, false);
    let d_prime = structure_for_assignment(&encoding, assignment, false, true);
    (encoding, d, d_prime)
}

/// The value `m^D` of a monomial over a structure (substituting `D_{Xᵢ}` for
/// each unknown — the quantity of Lemma 59).
pub fn monomial_value_over(
    _encoding: &HilbertEncoding,
    monomial: &crate::monomial::Monomial,
    d: &Structure,
) -> Int {
    let mut acc = Int::from_i64(monomial.coefficient);
    for (x, deg) in &monomial.degrees {
        let count = d.relation_size(&unknown_relation(x)) as u64;
        acc = acc.mul_ref(&Int::from_u64(count).pow(*deg as u64));
    }
    acc
}

/// Check the defining property of the reduction on a concrete pair:
/// every view agrees, the query does not.
pub fn verify_counterexample(
    encoding: &HilbertEncoding,
    d: &Structure,
    d_prime: &Structure,
) -> bool {
    for v in &encoding.views {
        if eval_boolean_ucq(v, &encoding.schema, d)
            != eval_boolean_ucq(v, &encoding.schema, d_prime)
        {
            return false;
        }
    }
    eval_boolean_ucq(&encoding.query, &encoding.schema, d)
        != eval_boolean_ucq(&encoding.query, &encoding.schema, d_prime)
}

/// A sound but necessarily incomplete non-determinacy detector: search for a
/// solution with all unknowns `≤ bound`; if one is found, return a verified
/// counterexample pair.
pub fn bounded_refutation(
    instance: &DiophantineInstance,
    bound: u64,
) -> Option<(HilbertEncoding, Structure, Structure)> {
    let solution = instance.bounded_search(bound)?;
    let (encoding, d, d_prime) = counterexample_from_solution(instance, &solution);
    debug_assert!(verify_counterexample(&encoding, &d, &d_prime));
    Some((encoding, d, d_prime))
}

/// Evaluate `Φ_m(D)` (needed by tests of Lemma 59): the number of
/// homomorphisms of the unguarded monomial query into `D`.
pub fn phi_value(
    encoding: &HilbertEncoding,
    monomial: &crate::monomial::Monomial,
    d: &Structure,
) -> Nat {
    let phi = crate::encoding::phi_m(monomial);
    cqdet_query::eval::eval_boolean_cq(&phi, &encoding.schema, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use cqdet_bigint::Nat;

    fn assign(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn pythagorean() -> DiophantineInstance {
        DiophantineInstance::from_terms(&[(1, &[("x", 2)]), (1, &[("y", 2)]), (-1, &[("z", 2)])])
    }

    #[test]
    fn structure_counts_match_assignment() {
        let enc = encode(&pythagorean());
        let d =
            structure_for_assignment(&enc, &assign(&[("x", 3), ("y", 4), ("z", 5)]), true, false);
        assert_eq!(d.relation_size("X_x"), 3);
        assert_eq!(d.relation_size("X_y"), 4);
        assert_eq!(d.relation_size("X_z"), 5);
        assert!(d.contains_fact("H", &[]));
        assert!(!d.contains_fact("C", &[]));
    }

    #[test]
    fn lemma_59_monomial_vs_phi() {
        // m^D = c(m) · Φ_m(D).
        let enc = encode(&pythagorean());
        let d =
            structure_for_assignment(&enc, &assign(&[("x", 3), ("y", 4), ("z", 5)]), true, false);
        for m in enc.instance.monomials() {
            let lhs = monomial_value_over(&enc, m, &d);
            let phi = phi_value(&enc, m, &d);
            let rhs = Int::from_i64(m.coefficient).mul_ref(&Int::from_nat(phi));
            assert_eq!(lhs, rhs, "Lemma 59 fails for {m}");
        }
        // Spot check: Φ for x² is D_X_x² = 9.
        let mx = Monomial::new(1, &[("x", 2)]);
        assert_eq!(phi_value(&enc, &mx, &d), Nat::from_u64(9));
    }

    #[test]
    fn lemmas_60_61_psi_values() {
        // Ψ_P(D) = D_H · Σ_{m∈P} m^D  and  Ψ_N(D) = −D_C · Σ_{m∈N} m^D.
        let inst = pythagorean();
        let enc = encode(&inst);
        for (h, c) in [(true, false), (false, true), (true, true), (false, false)] {
            let d = structure_for_assignment(&enc, &assign(&[("x", 3), ("y", 4), ("z", 5)]), h, c);
            let psi_p =
                cqdet_query::UnionQuery::new("psi_p", crate::encoding::psi(&inst.positive(), "H"));
            let psi_n =
                cqdet_query::UnionQuery::new("psi_n", crate::encoding::psi(&inst.negative(), "C"));
            let psi_p_val = eval_boolean_ucq(&psi_p, &enc.schema, &d);
            let psi_n_val = eval_boolean_ucq(&psi_n, &enc.schema, &d);
            let sum_p: Int = inst
                .positive()
                .iter()
                .fold(Int::zero(), |acc, m| acc + monomial_value_over(&enc, m, &d));
            let sum_n: Int = inst
                .negative()
                .iter()
                .fold(Int::zero(), |acc, m| acc + monomial_value_over(&enc, m, &d));
            let dh = Int::from_u64(if h { 1 } else { 0 });
            let dc = Int::from_u64(if c { 1 } else { 0 });
            assert_eq!(dh.mul_ref(&sum_p), Int::from_nat(psi_p_val), "Lemma 60");
            assert_eq!(
                dc.mul_ref(&sum_n),
                Int::from_nat(psi_n_val).neg_ref(),
                "Lemma 61"
            );
        }
    }

    #[test]
    fn lemma_63_solution_gives_counterexample() {
        let inst = pythagorean();
        let (enc, d, d_prime) =
            counterexample_from_solution(&inst, &assign(&[("x", 3), ("y", 4), ("z", 5)]));
        assert!(verify_counterexample(&enc, &d, &d_prime));
        // The query distinguishes them in the expected direction: q = H.
        assert_eq!(eval_boolean_ucq(&enc.query, &enc.schema, &d), Nat::one());
        assert_eq!(
            eval_boolean_ucq(&enc.query, &enc.schema, &d_prime),
            Nat::zero()
        );
    }

    #[test]
    fn non_solution_pair_is_rejected() {
        // If the assignment is not a solution, the pair must NOT verify: the
        // V_I view tells them apart.  (We bypass the assertion by building the
        // structures manually.)
        let inst = pythagorean();
        let enc = encode(&inst);
        let bad = assign(&[("x", 1), ("y", 1), ("z", 1)]);
        assert!(!inst.is_solution(&bad));
        let d = structure_for_assignment(&enc, &bad, true, false);
        let d_prime = structure_for_assignment(&enc, &bad, false, true);
        assert!(!verify_counterexample(&enc, &d, &d_prime));
    }

    #[test]
    #[should_panic(expected = "genuine solution")]
    fn counterexample_from_non_solution_panics() {
        let inst = pythagorean();
        let _ = counterexample_from_solution(&inst, &assign(&[("x", 1), ("y", 1), ("z", 1)]));
    }

    #[test]
    fn bounded_refutation_end_to_end() {
        // Solvable: x·y − 6 = 0.
        let inst = DiophantineInstance::from_terms(&[(1, &[("x", 1), ("y", 1)]), (-6, &[])]);
        let (enc, d, d_prime) = bounded_refutation(&inst, 6).unwrap();
        assert!(verify_counterexample(&enc, &d, &d_prime));
        // Unsolvable over ℕ: x + 1 = 0 → no refutation found (and indeed the
        // encoded instance is determined, though we cannot *prove* that here).
        let none = DiophantineInstance::from_terms(&[(1, &[("x", 1)]), (1, &[])]);
        assert!(bounded_refutation(&none, 20).is_none());
    }

    #[test]
    fn trivial_zero_solution() {
        // x² − y² = 0 has the trivial solution x = y = 0; the counterexample
        // machinery must handle empty X relations.
        let inst = DiophantineInstance::from_terms(&[(1, &[("x", 2)]), (-1, &[("y", 2)])]);
        let (enc, d, d_prime) = bounded_refutation(&inst, 0).unwrap();
        assert_eq!(d.relation_size("X_x"), 0);
        assert!(verify_counterexample(&enc, &d, &d_prime));
    }
}
