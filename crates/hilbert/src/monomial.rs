//! Monomials and Diophantine instances (Hilbert's Tenth Problem, Problem 58).

use cqdet_bigint::Int;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial `c · x₁^{d₁} ⋯ x_n^{d_n}` with an integer coefficient.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Monomial {
    /// The coefficient `c(m)` (non-zero).
    pub coefficient: i64,
    /// The degree `m(x)` of each unknown occurring in the monomial.
    pub degrees: BTreeMap<String, u32>,
}

impl Monomial {
    /// Construct a monomial from a coefficient and `(unknown, degree)` pairs.
    ///
    /// Panics if the coefficient is zero or a degree is zero.
    pub fn new(coefficient: i64, degrees: &[(&str, u32)]) -> Self {
        assert!(
            coefficient != 0,
            "a monomial must have a non-zero coefficient"
        );
        let mut map = BTreeMap::new();
        for (v, d) in degrees {
            assert!(
                *d > 0,
                "unknowns present in a monomial must have positive degree"
            );
            *map.entry(v.to_string()).or_insert(0) += d;
        }
        Monomial {
            coefficient,
            degrees: map,
        }
    }

    /// A constant monomial (no unknowns).
    pub fn constant(coefficient: i64) -> Self {
        Monomial::new(coefficient, &[])
    }

    /// The degree `m(x)` of an unknown (0 if absent).
    pub fn degree(&self, unknown: &str) -> u32 {
        self.degrees.get(unknown).copied().unwrap_or(0)
    }

    /// The total degree of the monomial.
    pub fn total_degree(&self) -> u32 {
        self.degrees.values().sum()
    }

    /// Evaluate the monomial under an assignment of the unknowns
    /// (missing unknowns default to 0).
    pub fn evaluate(&self, assignment: &BTreeMap<String, u64>) -> Int {
        let mut acc = Int::from_i64(self.coefficient);
        for (x, d) in &self.degrees {
            let value = assignment.get(x).copied().unwrap_or(0);
            acc = acc.mul_ref(&Int::from_u64(value).pow(*d as u64));
        }
        acc
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.coefficient)?;
        for (x, d) in &self.degrees {
            if *d == 1 {
                write!(f, "·{x}")?;
            } else {
                write!(f, "·{x}^{d}")?;
            }
        }
        Ok(())
    }
}

/// An instance of Hilbert's Tenth Problem: does `Σ_{m ∈ I} m(x⃗) = 0` have a
/// solution over the natural numbers?
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiophantineInstance {
    monomials: Vec<Monomial>,
}

impl DiophantineInstance {
    /// Build an instance from its monomials.
    pub fn new(monomials: Vec<Monomial>) -> Self {
        assert!(
            !monomials.is_empty(),
            "an instance needs at least one monomial"
        );
        DiophantineInstance { monomials }
    }

    /// Build an instance from `(coefficient, [(unknown, degree)…])` terms.
    pub fn from_terms(terms: &[(i64, &[(&str, u32)])]) -> Self {
        DiophantineInstance::new(terms.iter().map(|(c, ds)| Monomial::new(*c, ds)).collect())
    }

    /// The monomials of the instance.
    pub fn monomials(&self) -> &[Monomial] {
        &self.monomials
    }

    /// Monomials with positive coefficient (the set `P` of Appendix A).
    pub fn positive(&self) -> Vec<&Monomial> {
        self.monomials
            .iter()
            .filter(|m| m.coefficient > 0)
            .collect()
    }

    /// Monomials with negative coefficient (the set `N` of Appendix A).
    pub fn negative(&self) -> Vec<&Monomial> {
        self.monomials
            .iter()
            .filter(|m| m.coefficient < 0)
            .collect()
    }

    /// The unknowns occurring in the instance, sorted.
    pub fn unknowns(&self) -> Vec<String> {
        let mut set: Vec<String> = self
            .monomials
            .iter()
            .flat_map(|m| m.degrees.keys().cloned())
            .collect();
        set.sort();
        set.dedup();
        set
    }

    /// Evaluate `Σ m(x⃗)` under an assignment.
    pub fn evaluate(&self, assignment: &BTreeMap<String, u64>) -> Int {
        let mut acc = Int::zero();
        for m in &self.monomials {
            acc += &m.evaluate(assignment);
        }
        acc
    }

    /// Whether an assignment is a solution (`Σ m(x⃗) = 0`).
    pub fn is_solution(&self, assignment: &BTreeMap<String, u64>) -> bool {
        self.evaluate(assignment).is_zero()
    }

    /// Exhaustively search for a solution with every unknown at most `bound`.
    ///
    /// Complete for that box, but of course not in general — Hilbert's Tenth
    /// Problem is undecidable, which is the whole point of Theorem 2.
    pub fn bounded_search(&self, bound: u64) -> Option<BTreeMap<String, u64>> {
        let unknowns = self.unknowns();
        let n = unknowns.len();
        let mut values = vec![0u64; n];
        loop {
            let assignment: BTreeMap<String, u64> = unknowns
                .iter()
                .cloned()
                .zip(values.iter().copied())
                .collect();
            if self.is_solution(&assignment) {
                return Some(assignment);
            }
            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == n {
                    return None;
                }
                values[pos] += 1;
                if values[pos] <= bound {
                    break;
                }
                values[pos] = 0;
                pos += 1;
            }
            if n == 0 {
                return None;
            }
        }
    }
}

impl fmt::Display for DiophantineInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.monomials.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({m})")?;
        }
        write!(f, " = 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// x² + y² − z² = 0 (Pythagorean triples).
    fn pythagorean() -> DiophantineInstance {
        DiophantineInstance::from_terms(&[(1, &[("x", 2)]), (1, &[("y", 2)]), (-1, &[("z", 2)])])
    }

    #[test]
    fn monomial_evaluation() {
        let m = Monomial::new(3, &[("x", 2), ("y", 1)]);
        assert_eq!(m.degree("x"), 2);
        assert_eq!(m.degree("z"), 0);
        assert_eq!(m.total_degree(), 3);
        assert_eq!(
            m.evaluate(&assign(&[("x", 2), ("y", 5)])),
            Int::from_i64(60)
        );
        assert_eq!(
            m.evaluate(&assign(&[("x", 2)])),
            Int::zero(),
            "missing unknown is 0"
        );
        assert_eq!(
            Monomial::constant(-7).evaluate(&assign(&[])),
            Int::from_i64(-7)
        );
        assert_eq!(m.to_string(), "3·x^2·y");
    }

    #[test]
    #[should_panic(expected = "non-zero coefficient")]
    fn zero_coefficient_panics() {
        let _ = Monomial::new(0, &[("x", 1)]);
    }

    #[test]
    fn repeated_unknowns_accumulate_degree() {
        let m = Monomial::new(1, &[("x", 1), ("x", 2)]);
        assert_eq!(m.degree("x"), 3);
    }

    #[test]
    fn instance_evaluation_and_solutions() {
        let p = pythagorean();
        assert_eq!(p.unknowns(), vec!["x", "y", "z"]);
        assert_eq!(p.positive().len(), 2);
        assert_eq!(p.negative().len(), 1);
        assert!(p.is_solution(&assign(&[("x", 3), ("y", 4), ("z", 5)])));
        assert!(p.is_solution(&assign(&[("x", 0), ("y", 0), ("z", 0)])));
        assert!(!p.is_solution(&assign(&[("x", 1), ("y", 1), ("z", 1)])));
        assert_eq!(
            p.evaluate(&assign(&[("x", 1), ("y", 1), ("z", 1)])),
            Int::from_i64(1)
        );
        assert!(p.to_string().contains("= 0"));
    }

    #[test]
    fn bounded_search_finds_nontrivial_solutions() {
        // x·y − 6 = 0 has (1,6), (2,3), … but we exclude trivial zero by
        // requiring the constant −6.
        let inst = DiophantineInstance::from_terms(&[(1, &[("x", 1), ("y", 1)]), (-6, &[])]);
        let sol = inst.bounded_search(6).unwrap();
        assert!(inst.is_solution(&sol));
        assert_eq!(sol["x"] * sol["y"], 6);
        // x + 1 = 0 has no solution over ℕ.
        let none = DiophantineInstance::from_terms(&[(1, &[("x", 1)]), (1, &[])]);
        assert_eq!(none.bounded_search(50), None);
        // A constant-only unsolvable instance.
        let c = DiophantineInstance::from_terms(&[(2, &[])]);
        assert_eq!(c.bounded_search(10), None);
        // A constant-only solvable instance (2 − 2 = 0).
        let ok = DiophantineInstance::from_terms(&[(2, &[]), (-2, &[])]);
        assert!(ok.bounded_search(0).is_some());
    }

    #[test]
    fn bounded_search_respects_bound() {
        // x − 10 = 0: solution at x = 10, not found with bound 5.
        let inst = DiophantineInstance::from_terms(&[(1, &[("x", 1)]), (-10, &[])]);
        assert!(inst.bounded_search(5).is_none());
        assert_eq!(inst.bounded_search(10).unwrap()["x"], 10);
    }
}
