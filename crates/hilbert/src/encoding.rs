//! The UCQ encoding of a Diophantine instance (Appendix A).
//!
//! * `Φ_m` — for a monomial `m`, the boolean CQ with, for every unknown `xᵢ`,
//!   `m(xᵢ)` atoms `Xᵢ(y_{i,j})` over pairwise distinct existential variables.
//!   Then `Φ_m(D) = Π_i D_{Xᵢ}^{m(xᵢ)}`, so `m^D = c(m) · Φ_m(D)` (Lemma 59).
//! * `Ψ_P = ⋁_{m ∈ P} ⋁_{i=1}^{c(m)} (Φ_m ∧ H)` and
//!   `Ψ_N = ⋁_{m ∈ N} ⋁_{i=1}^{|c(m)|} (Φ_m ∧ C)` — the positive and negative
//!   parts, guarded by the nullary markers `H` and `C`.
//! * The query is `q = H`; the views are `V₁ = H ∨ C`, `V_{xᵢ} = ∃y Xᵢ(y)` and
//!   `V_I = Ψ_P ∨ Ψ_N`.

use crate::monomial::{DiophantineInstance, Monomial};
use cqdet_query::cq::Atom;
use cqdet_query::{ConjunctiveQuery, UnionQuery};
use cqdet_structure::Schema;

/// The relation name used for an unknown.
pub fn unknown_relation(unknown: &str) -> String {
    format!("X_{unknown}")
}

/// The complete output of the Theorem 2 reduction.
#[derive(Clone, Debug)]
pub struct HilbertEncoding {
    /// The schema Σ: nullary `H`, `C` and unary `X_{xᵢ}`.
    pub schema: Schema,
    /// The query `q = H`.
    pub query: UnionQuery,
    /// The views `V₁`, `V_{xᵢ}` (one per unknown, in sorted order), `V_I`.
    pub views: Vec<UnionQuery>,
    /// The instance this encoding came from.
    pub instance: DiophantineInstance,
}

impl HilbertEncoding {
    /// The view `V₁ = H ∨ C`.
    pub fn v1(&self) -> &UnionQuery {
        &self.views[0]
    }

    /// The views `V_{xᵢ}` in the order of [`DiophantineInstance::unknowns`].
    pub fn unknown_views(&self) -> &[UnionQuery] {
        &self.views[1..self.views.len() - 1]
    }

    /// The view `V_I = Ψ_P ∨ Ψ_N`.
    pub fn v_i(&self) -> &UnionQuery {
        &self.views[self.views.len() - 1]
    }

    /// Total number of CQ disjuncts across all views — the "size" of the
    /// reduction output (reported by the HILBERT benchmark).
    pub fn total_disjuncts(&self) -> usize {
        self.views.iter().map(UnionQuery::len).sum()
    }
}

/// The boolean CQ `Φ_m` of a monomial (without the `H`/`C` guard).
pub fn phi_m(monomial: &Monomial) -> ConjunctiveQuery {
    let mut atoms = Vec::new();
    for (x, d) in &monomial.degrees {
        for j in 0..*d {
            atoms.push(Atom {
                relation: unknown_relation(x),
                vars: vec![format!("y_{x}_{j}")],
            });
        }
    }
    // A constant monomial has no atoms; guard-only disjuncts handle it, and a
    // CQ needs at least something to be well-formed — the guard atom is added
    // by the caller, so an empty body here is fine (it will never be used
    // alone).
    ConjunctiveQuery::boolean(format!("phi[{monomial}]"), atoms)
}

fn guarded(phi: &ConjunctiveQuery, guard: &str, copy: usize) -> ConjunctiveQuery {
    let mut atoms = phi.atoms().to_vec();
    atoms.push(Atom {
        relation: guard.to_string(),
        vars: vec![],
    });
    ConjunctiveQuery::boolean(format!("{}&{guard}#{copy}", phi.name()), atoms)
}

/// `Ψ_P` (when `guard = "H"`, over the positive monomials) or `Ψ_N`
/// (`guard = "C"`, negative monomials): each monomial `m` contributes
/// `|c(m)|` copies of `Φ_m ∧ guard`.
pub fn psi(monomials: &[&Monomial], guard: &str) -> Vec<ConjunctiveQuery> {
    let mut disjuncts = Vec::new();
    for m in monomials {
        let phi = phi_m(m);
        for i in 0..m.coefficient.unsigned_abs() {
            disjuncts.push(guarded(&phi, guard, i as usize));
        }
    }
    disjuncts
}

/// Run the Theorem 2 reduction on a Diophantine instance.
pub fn encode(instance: &DiophantineInstance) -> HilbertEncoding {
    let unknowns = instance.unknowns();
    let mut schema = Schema::with_relations([("H", 0usize), ("C", 0usize)]);
    for x in &unknowns {
        schema.add_relation(unknown_relation(x), 1);
    }

    // q = H.
    let query = UnionQuery::from_cq(ConjunctiveQuery::boolean(
        "q",
        vec![Atom {
            relation: "H".to_string(),
            vars: vec![],
        }],
    ));

    let mut views = Vec::new();
    // V1 = H ∨ C.
    views.push(UnionQuery::new(
        "V1",
        vec![
            ConjunctiveQuery::boolean(
                "V1#H",
                vec![Atom {
                    relation: "H".to_string(),
                    vars: vec![],
                }],
            ),
            ConjunctiveQuery::boolean(
                "V1#C",
                vec![Atom {
                    relation: "C".to_string(),
                    vars: vec![],
                }],
            ),
        ],
    ));
    // V_{x_i} = ∃y X_i(y).
    for x in &unknowns {
        views.push(UnionQuery::from_cq(ConjunctiveQuery::boolean(
            format!("V_{x}"),
            vec![Atom {
                relation: unknown_relation(x),
                vars: vec!["y".to_string()],
            }],
        )));
    }
    // V_I = Ψ_P ∨ Ψ_N.
    let mut vi_disjuncts = psi(&instance.positive(), "H");
    vi_disjuncts.extend(psi(&instance.negative(), "C"));
    assert!(
        !vi_disjuncts.is_empty(),
        "an instance has at least one monomial, so V_I has at least one disjunct"
    );
    views.push(UnionQuery::new("V_I", vi_disjuncts));

    HilbertEncoding {
        schema,
        query,
        views,
        instance: instance.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pythagorean() -> DiophantineInstance {
        DiophantineInstance::from_terms(&[(1, &[("x", 2)]), (1, &[("y", 2)]), (-1, &[("z", 2)])])
    }

    #[test]
    fn phi_m_has_degree_many_atoms() {
        let m = Monomial::new(3, &[("x", 2), ("y", 1)]);
        let phi = phi_m(&m);
        assert_eq!(phi.atoms().len(), 3);
        assert!(phi.is_boolean());
        // Distinct variables for distinct copies.
        let vars: std::collections::BTreeSet<_> =
            phi.atoms().iter().flat_map(|a| a.vars.clone()).collect();
        assert_eq!(vars.len(), 3);
        // A constant monomial gives the empty body.
        assert_eq!(phi_m(&Monomial::constant(5)).atoms().len(), 0);
    }

    #[test]
    fn psi_counts_coefficient_copies() {
        let inst = DiophantineInstance::from_terms(&[(3, &[("x", 1)]), (-2, &[("y", 1)])]);
        let p = psi(&inst.positive(), "H");
        let n = psi(&inst.negative(), "C");
        assert_eq!(p.len(), 3);
        assert_eq!(n.len(), 2);
        assert!(p
            .iter()
            .all(|d| d.atoms().iter().any(|a| a.relation == "H")));
        assert!(n
            .iter()
            .all(|d| d.atoms().iter().any(|a| a.relation == "C")));
    }

    #[test]
    fn encoding_shape() {
        let enc = encode(&pythagorean());
        // Views: V1, V_x, V_y, V_z, V_I.
        assert_eq!(enc.views.len(), 5);
        assert_eq!(enc.unknown_views().len(), 3);
        assert_eq!(enc.v1().len(), 2);
        // V_I: |1| + |1| copies with H, |−1| with C = 3 disjuncts.
        assert_eq!(enc.v_i().len(), 3);
        assert_eq!(enc.total_disjuncts(), 2 + 3 + 3);
        // Schema: H, C nullary; X_x, X_y, X_z unary.
        assert_eq!(enc.schema.arity("H"), Some(0));
        assert_eq!(enc.schema.arity("C"), Some(0));
        assert_eq!(enc.schema.arity("X_x"), Some(1));
        assert_eq!(enc.schema.len(), 5);
        // q = H.
        assert!(enc.query.is_single_cq());
        assert_eq!(enc.query.disjuncts()[0].atoms()[0].relation, "H");
    }

    #[test]
    fn encoding_scales_with_coefficients() {
        let inst = DiophantineInstance::from_terms(&[(10, &[("x", 1)]), (-10, &[("y", 2)])]);
        let enc = encode(&inst);
        assert_eq!(enc.v_i().len(), 20);
        // Degrees show up as atom counts.
        let neg_disjunct = enc
            .v_i()
            .disjuncts()
            .iter()
            .find(|d| d.atoms().iter().any(|a| a.relation == "C"))
            .unwrap();
        // 2 atoms X_y plus the C guard.
        assert_eq!(neg_disjunct.atoms().len(), 3);
    }
}
