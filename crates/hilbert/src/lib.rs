//! The Theorem 2 reduction (Appendix A): bag-determinacy of boolean **UCQs**
//! is undecidable, by reduction from Hilbert's Tenth Problem.
//!
//! Given a Diophantine instance `I = {m₁, …, m_k}` (a set of monomials with
//! integer coefficients, asking whether `Σ mᵢ(x⃗) = 0` has a solution over ℕ),
//! the reduction produces
//!
//! * a schema with nullary predicates `H`, `C` and unary predicates
//!   `X₁, …, X_n` (one per unknown),
//! * the boolean UCQ query `q = H`,
//! * views `V₁ = H ∨ C`, `V_{xᵢ} = ∃y Xᵢ(y)` and `V_I = Ψ_P ∨ Ψ_N`,
//!
//! such that `I` has **no** solution over ℕ iff `V ⟶_bag q`.  Since the query
//! language is undecidable here, this crate cannot (and does not) decide
//! determinacy — it implements the reduction itself, evaluation of the encoded
//! queries, the counterexample constructed from a solution (Lemma 63 (⇐)),
//! and a bounded solution search that yields a sound but incomplete
//! non-determinacy detector.

pub mod encoding;
pub mod monomial;
pub mod structures;

pub use encoding::{encode, HilbertEncoding};
pub use monomial::{DiophantineInstance, Monomial};
pub use structures::{counterexample_from_solution, structure_for_assignment};
